package iprep

import (
	"sync/atomic"
	"time"
)

// Dynamic reputation overlay: real feeds are not static — operators push
// newly confirmed scraper infrastructure, proxy exits appear and age out,
// and a long-running deployment must be able to absorb those updates
// without rebuilding its database. InsertTemporary registers a prefix
// with an expiry; EvictBefore (driven by the same windowed sweeper that
// bounds every other stateful layer) retires entries whose TTL has
// passed.
//
// The overlay is copy-on-write behind an atomic pointer: lookups stay
// lock- and allocation-free on the hot path (httpguard shares one DB
// across all shards), while the infrequent mutations swap in a fresh
// immutable slice. Between sweeps an expired entry can still match — the
// sweep cadence, not the lookup, bounds staleness, which keeps Lookup
// free of a time parameter. Temporary entries are runtime intel, not
// configuration, so they are deliberately excluded from snapshots: a
// restored process re-learns them from its feed.

// tempEntry is one TTL-bounded overlay entry.
type tempEntry struct {
	prefix Prefix
	cat    Category
	until  time.Time
}

// overlay is the immutable published form of the dynamic entries.
type overlay struct {
	entries []tempEntry
}

// InsertTemporary registers a prefix with a category until the given
// expiry. A more specific overlay match beats a static feed match; at
// equal specificity the overlay wins (fresher intelligence). Re-inserting
// an identical prefix replaces its category and expiry. Mutators
// serialise on an internal lock, so an operator push and a sweeper
// eviction can run from different goroutines without losing updates;
// lookups never take the lock.
func (db *DB) InsertTemporary(p Prefix, c Category, until time.Time) {
	db.tempMu.Lock()
	defer db.tempMu.Unlock()
	old := db.loadOverlay()
	entries := make([]tempEntry, 0, len(old)+1)
	for _, e := range old {
		if e.prefix != p {
			entries = append(entries, e)
		}
	}
	entries = append(entries, tempEntry{prefix: p, cat: c, until: until})
	db.temp.Store(&overlay{entries: entries})
}

// EvictBefore removes overlay entries whose expiry is before cutoff and
// returns the number removed. It is the iprep face of the sweeper's
// Evictable contract.
func (db *DB) EvictBefore(cutoff time.Time) int {
	db.tempMu.Lock()
	defer db.tempMu.Unlock()
	old := db.loadOverlay()
	kept := make([]tempEntry, 0, len(old))
	for _, e := range old {
		if !e.until.Before(cutoff) {
			kept = append(kept, e)
		}
	}
	evicted := len(old) - len(kept)
	if evicted > 0 {
		db.temp.Store(&overlay{entries: kept})
	}
	return evicted
}

// TempLen reports the number of live overlay entries.
func (db *DB) TempLen() int { return len(db.loadOverlay()) }

// TempEntry is one overlay entry in exported, replicable form — the unit
// the cluster plane ships between nodes, since the overlay (unlike the
// static feed) is runtime intelligence a restarted or joining peer cannot
// rebuild on its own.
type TempEntry struct {
	// Prefix is the covered address range.
	Prefix Prefix
	// Cat is the reputation category asserted for the range.
	Cat Category
	// Until is the entry's expiry.
	Until time.Time
}

// TempEntries streams the live overlay entries. The snapshot it iterates
// is the immutable published slice, so it is safe against concurrent
// mutators and never blocks lookups.
func (db *DB) TempEntries(fn func(TempEntry)) {
	for _, e := range db.loadOverlay() {
		fn(TempEntry{Prefix: e.prefix, Cat: e.cat, Until: e.until})
	}
}

// MergeTemporary folds a replicated overlay entry in with
// longest-lease-wins semantics: an unknown prefix is inserted, a known
// one is replaced only when the incoming expiry is strictly later. It
// reports whether the entry was applied. Stale and duplicate deliveries
// are no-ops, so merging is idempotent and order-independent — the same
// convergence contract the mitigation digests carry. Entries with an
// out-of-range prefix or an unknown category are rejected outright:
// this is the door replicated peer state walks through.
func (db *DB) MergeTemporary(e TempEntry) bool {
	if e.Prefix.Bits < 0 || e.Prefix.Bits > 32 || !e.Cat.Valid() {
		return false
	}
	db.tempMu.Lock()
	defer db.tempMu.Unlock()
	old := db.loadOverlay()
	for _, cur := range old {
		if cur.prefix == e.Prefix && !e.Until.After(cur.until) {
			return false
		}
	}
	entries := make([]tempEntry, 0, len(old)+1)
	for _, cur := range old {
		if cur.prefix != e.Prefix {
			entries = append(entries, cur)
		}
	}
	entries = append(entries, tempEntry{prefix: e.Prefix, cat: e.Cat, until: e.Until})
	db.temp.Store(&overlay{entries: entries})
	return true
}

// loadOverlay returns the current overlay entries (nil when none).
func (db *DB) loadOverlay() []tempEntry {
	if o := db.temp.Load(); o != nil {
		return o.entries
	}
	return nil
}

// lookupTemp finds the most specific overlay match at least as specific
// as minBits.
func (db *DB) lookupTemp(ip uint32, minBits int, have bool) (Category, bool, int) {
	cat, found, bits := Unknown, false, minBits
	first := !have
	for _, e := range db.loadOverlay() {
		if !e.prefix.Contains(ip) {
			continue
		}
		if first || e.prefix.Bits >= bits {
			cat, found, bits = e.cat, true, e.prefix.Bits
			first = false
		}
	}
	return cat, found, bits
}

// tempPtr aliases atomic.Pointer so the DB struct in trie.go stays
// focused on the radix trie.
type tempPtr = atomic.Pointer[overlay]
