package iprep

import (
	"sync/atomic"
	"time"
)

// Dynamic reputation overlay: real feeds are not static — operators push
// newly confirmed scraper infrastructure, proxy exits appear and age out,
// and a long-running deployment must be able to absorb those updates
// without rebuilding its database. InsertTemporary registers a prefix
// with an expiry; EvictBefore (driven by the same windowed sweeper that
// bounds every other stateful layer) retires entries whose TTL has
// passed.
//
// The overlay is copy-on-write behind an atomic pointer: lookups stay
// lock- and allocation-free on the hot path (httpguard shares one DB
// across all shards), while the infrequent mutations swap in a fresh
// immutable slice. Between sweeps an expired entry can still match — the
// sweep cadence, not the lookup, bounds staleness, which keeps Lookup
// free of a time parameter. Temporary entries are runtime intel, not
// configuration, so they are deliberately excluded from snapshots: a
// restored process re-learns them from its feed.

// tempEntry is one TTL-bounded overlay entry.
type tempEntry struct {
	prefix Prefix
	cat    Category
	until  time.Time
}

// overlay is the immutable published form of the dynamic entries.
type overlay struct {
	entries []tempEntry
}

// InsertTemporary registers a prefix with a category until the given
// expiry. A more specific overlay match beats a static feed match; at
// equal specificity the overlay wins (fresher intelligence). Re-inserting
// an identical prefix replaces its category and expiry. Mutators
// serialise on an internal lock, so an operator push and a sweeper
// eviction can run from different goroutines without losing updates;
// lookups never take the lock.
func (db *DB) InsertTemporary(p Prefix, c Category, until time.Time) {
	db.tempMu.Lock()
	defer db.tempMu.Unlock()
	old := db.loadOverlay()
	entries := make([]tempEntry, 0, len(old)+1)
	for _, e := range old {
		if e.prefix != p {
			entries = append(entries, e)
		}
	}
	entries = append(entries, tempEntry{prefix: p, cat: c, until: until})
	db.temp.Store(&overlay{entries: entries})
}

// EvictBefore removes overlay entries whose expiry is before cutoff and
// returns the number removed. It is the iprep face of the sweeper's
// Evictable contract.
func (db *DB) EvictBefore(cutoff time.Time) int {
	db.tempMu.Lock()
	defer db.tempMu.Unlock()
	old := db.loadOverlay()
	kept := make([]tempEntry, 0, len(old))
	for _, e := range old {
		if !e.until.Before(cutoff) {
			kept = append(kept, e)
		}
	}
	evicted := len(old) - len(kept)
	if evicted > 0 {
		db.temp.Store(&overlay{entries: kept})
	}
	return evicted
}

// TempLen reports the number of live overlay entries.
func (db *DB) TempLen() int { return len(db.loadOverlay()) }

// loadOverlay returns the current overlay entries (nil when none).
func (db *DB) loadOverlay() []tempEntry {
	if o := db.temp.Load(); o != nil {
		return o.entries
	}
	return nil
}

// lookupTemp finds the most specific overlay match at least as specific
// as minBits.
func (db *DB) lookupTemp(ip uint32, minBits int, have bool) (Category, bool, int) {
	cat, found, bits := Unknown, false, minBits
	first := !have
	for _, e := range db.loadOverlay() {
		if !e.prefix.Contains(ip) {
			continue
		}
		if first || e.prefix.Bits >= bits {
			cat, found, bits = e.cat, true, e.prefix.Bits
			first = false
		}
	}
	return cat, found, bits
}

// tempPtr aliases atomic.Pointer so the DB struct in trie.go stays
// focused on the radix trie.
type tempPtr = atomic.Pointer[overlay]
