package iprep

import (
	"testing"

	"divscrape/internal/statecodec"
)

func TestDBSnapshotRoundTrip(t *testing.T) {
	a := BuildFeed()
	// Simulate a runtime feed refresh before the snapshot.
	if err := a.InsertCIDR("203.0.113.0/24", KnownScraper); err != nil {
		t.Fatal(err)
	}
	w := statecodec.NewWriter()
	a.SnapshotInto(w)

	b := NewDB()
	if err := b.RestoreFrom(statecodec.NewReader(w.Bytes())); err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("Len %d vs %d", a.Len(), b.Len())
	}
	// Walking both tables must yield the same sequence (Walk order is
	// canonical), proving every prefix and category survived.
	type pc struct {
		p Prefix
		c Category
	}
	collect := func(db *DB) []pc {
		var out []pc
		db.Walk(func(p Prefix, c Category) bool {
			out = append(out, pc{p, c})
			return true
		})
		return out
	}
	pa, pb := collect(a), collect(b)
	if len(pa) != len(pb) {
		t.Fatalf("walk lengths differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("entry %d differs: %v vs %v", i, pa[i], pb[i])
		}
	}
	if cat, ok := b.Lookup(mustIP(t, "203.0.113.7")); !ok || cat != KnownScraper {
		t.Errorf("refreshed prefix lost: %v %v", cat, ok)
	}

	// Determinism: re-snapshotting the restored table gives identical bytes.
	w2 := statecodec.NewWriter()
	b.SnapshotInto(w2)
	if string(w.Bytes()) != string(w2.Bytes()) {
		t.Error("snapshot not stable across a round-trip")
	}
}

func TestDBRestoreRejectsCorruptEntries(t *testing.T) {
	w := statecodec.NewWriter()
	w.Tag(0x4902)
	w.Uint32(1)
	w.Uint32(0x0A000000)
	w.Uint8(40) // prefix length out of range
	w.Uint8(uint8(Datacenter))
	if err := NewDB().RestoreFrom(statecodec.NewReader(w.Bytes())); err == nil {
		t.Error("prefix length 40 accepted")
	}

	w = statecodec.NewWriter()
	w.Tag(0x4902)
	w.Uint32(1)
	w.Uint32(0x0A000000)
	w.Uint8(8)
	w.Uint8(200) // category out of range
	if err := NewDB().RestoreFrom(statecodec.NewReader(w.Bytes())); err == nil {
		t.Error("category 200 accepted")
	}
}

// TestDBRestoreFailureLeavesTableUntouched: a corrupt snapshot must not
// destroy the live reputation table it was meant to replace.
func TestDBRestoreFailureLeavesTableUntouched(t *testing.T) {
	db := BuildFeed()
	before := db.Len()
	cat, ok := db.Lookup(mustIP(t, "66.249.64.1"))

	w := statecodec.NewWriter()
	w.Tag(0x4902)
	w.Uint32(2)
	w.Uint32(0x0A000000)
	w.Uint8(8)
	w.Uint8(uint8(Datacenter))
	w.Uint32(0x0B000000)
	w.Uint8(40) // corrupt second entry
	w.Uint8(uint8(Datacenter))
	if err := db.RestoreFrom(statecodec.NewReader(w.Bytes())); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	if db.Len() != before {
		t.Errorf("table size changed across failed restore: %d vs %d", db.Len(), before)
	}
	if cat2, ok2 := db.Lookup(mustIP(t, "66.249.64.1")); cat2 != cat || ok2 != ok {
		t.Error("lookup result changed across failed restore")
	}
}

func mustIP(t *testing.T, s string) uint32 {
	t.Helper()
	ip, err := ParseIPv4(s)
	if err != nil {
		t.Fatal(err)
	}
	return ip
}
