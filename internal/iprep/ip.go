// Package iprep provides an IP reputation substrate: IPv4 parsing, a
// longest-prefix-match CIDR trie, reputation categories, and synthetic feed
// construction. Commercial bot-mitigation products (the paper's Distil
// Networks) lean heavily on reputation feeds — datacenter ranges, known
// proxy exits, verified search-engine ranges — so the commercial-style
// detector consumes this database on every request.
package iprep

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseIPv4 parses dotted-quad notation into a big-endian uint32.
func ParseIPv4(s string) (uint32, error) {
	var ip uint32
	rest := s
	for octet := 0; octet < 4; octet++ {
		var part string
		if octet < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("iprep: invalid IPv4 %q: missing octet %d", s, octet+2)
			}
			part, rest = rest[:dot], rest[dot+1:]
		} else {
			part = rest
		}
		if len(part) == 0 || len(part) > 3 {
			return 0, fmt.Errorf("iprep: invalid IPv4 %q: bad octet %q", s, part)
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 || n > 255 {
			return 0, fmt.Errorf("iprep: invalid IPv4 %q: bad octet %q", s, part)
		}
		ip = ip<<8 | uint32(n)
	}
	return ip, nil
}

// FormatIPv4 renders a big-endian uint32 as dotted-quad notation.
func FormatIPv4(ip uint32) string {
	var b [15]byte
	out := strconv.AppendUint(b[:0], uint64(ip>>24), 10)
	out = append(out, '.')
	out = strconv.AppendUint(out, uint64(ip>>16&0xff), 10)
	out = append(out, '.')
	out = strconv.AppendUint(out, uint64(ip>>8&0xff), 10)
	out = append(out, '.')
	out = strconv.AppendUint(out, uint64(ip&0xff), 10)
	return string(out)
}

// Prefix is an IPv4 CIDR prefix.
type Prefix struct {
	// IP is the network address with host bits zeroed.
	IP uint32
	// Bits is the prefix length in [0, 32].
	Bits int
}

// ParseCIDR parses "a.b.c.d/len" notation.
func ParseCIDR(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("iprep: invalid CIDR %q: missing '/'", s)
	}
	ip, err := ParseIPv4(s[:slash])
	if err != nil {
		return Prefix{}, fmt.Errorf("iprep: invalid CIDR %q: %w", s, err)
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("iprep: invalid CIDR %q: bad prefix length", s)
	}
	return Prefix{IP: ip & maskFor(bits), Bits: bits}, nil
}

// MustCIDR parses a CIDR literal and panics on error; for package-level
// tables of well-formed constants only.
func MustCIDR(s string) Prefix {
	p, err := ParseCIDR(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip uint32) bool {
	return ip&maskFor(p.Bits) == p.IP
}

// Size returns the number of addresses covered by the prefix.
func (p Prefix) Size() uint64 {
	return uint64(1) << (32 - uint(p.Bits))
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return FormatIPv4(p.IP) + "/" + strconv.Itoa(p.Bits)
}

// Nth returns the nth address within the prefix (wrapping within its size).
func (p Prefix) Nth(n uint64) uint32 {
	return p.IP + uint32(n%p.Size())
}

func maskFor(bits int) uint32 {
	if bits <= 0 {
		return 0
	}
	return ^uint32(0) << (32 - uint(bits))
}
