package iprep

import (
	"fmt"
	"sync"
)

// Category classifies the origin of an address range as reputation feeds do.
type Category int

const (
	// Unknown means no feed covers the address.
	Unknown Category = iota
	// Residential ranges belong to consumer ISPs.
	Residential
	// Mobile ranges belong to cellular carrier gateways (heavily NATed).
	Mobile
	// Corporate ranges belong to enterprise egress points (NATed).
	Corporate
	// Datacenter ranges belong to hosting/cloud providers; browsers rarely
	// originate here, scrapers very often do.
	Datacenter
	// ProxyVPN ranges are known anonymising proxy or VPN exits.
	ProxyVPN
	// TorExit ranges are published Tor exit nodes.
	TorExit
	// SearchEngine ranges are verified crawler ranges of search engines.
	SearchEngine
	// KnownScraper ranges have been manually confirmed as scraping
	// infrastructure (the equivalent of a commercial blocklist).
	KnownScraper
)

var categoryNames = map[Category]string{
	Unknown:      "unknown",
	Residential:  "residential",
	Mobile:       "mobile",
	Corporate:    "corporate",
	Datacenter:   "datacenter",
	ProxyVPN:     "proxy-vpn",
	TorExit:      "tor-exit",
	SearchEngine: "search-engine",
	KnownScraper: "known-scraper",
}

// Valid reports whether c is one of the defined feed categories — the
// bound replication decoders and merge paths enforce on peer-supplied
// values, so a buggy or hostile peer cannot plant meaningless category
// numbers in a shared reputation DB.
func (c Category) Valid() bool { return c >= Unknown && c <= KnownScraper }

// String returns the feed-style name of the category.
func (c Category) String() string {
	if s, ok := categoryNames[c]; ok {
		return s
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// Suspicion returns the prior suspicion weight a reputation consumer
// assigns to the category, in [0, 1].
func (c Category) Suspicion() float64 {
	switch c {
	case KnownScraper:
		return 1.0
	case TorExit:
		return 0.9
	case ProxyVPN:
		return 0.75
	case Datacenter:
		return 0.65
	case SearchEngine:
		return 0.05
	case Corporate:
		return 0.1
	case Mobile:
		// Carrier NAT: individually innocent, but the shared gateways mean
		// a nonzero prior is defensible and is what commercial feeds ship.
		return 0.05
	case Residential:
		return 0.0
	default:
		return 0.2
	}
}

// node is a binary radix-trie node. Children index by the next address bit.
type node struct {
	children [2]*node
	category Category
	terminal bool
}

// DB is a longest-prefix-match IP reputation database backed by a binary
// radix trie, plus a TTL-bounded dynamic overlay (see ttl.go). Inserts
// are O(prefix length); lookups are O(32). The zero value is not usable —
// construct with NewDB.
//
// The static trie is immutable once built; the overlay mutates behind an
// atomic pointer with mutators serialised on tempMu. Lookup is therefore
// safe to call concurrently with InsertTemporary/EvictBefore (and those
// with each other), which is how the shared enricher uses one DB across
// every guard shard.
type DB struct {
	root   *node
	count  int
	temp   tempPtr
	tempMu sync.Mutex
}

// NewDB returns an empty reputation database.
func NewDB() *DB {
	return &DB{root: &node{}}
}

// Insert registers a prefix with a category. Inserting the same prefix
// twice overwrites the category (last feed wins), mirroring feed refresh
// semantics.
func (db *DB) Insert(p Prefix, c Category) {
	n := db.root
	for depth := 0; depth < p.Bits; depth++ {
		bit := p.IP >> (31 - uint(depth)) & 1
		if n.children[bit] == nil {
			n.children[bit] = &node{}
		}
		n = n.children[bit]
	}
	if !n.terminal {
		db.count++
	}
	n.terminal = true
	n.category = c
}

// InsertCIDR parses and inserts a CIDR string.
func (db *DB) InsertCIDR(cidr string, c Category) error {
	p, err := ParseCIDR(cidr)
	if err != nil {
		return err
	}
	db.Insert(p, c)
	return nil
}

// Lookup returns the category of the most specific prefix containing ip,
// across the static feed and the dynamic overlay (the overlay wins ties —
// fresher intelligence). The boolean reports whether any prefix matched.
func (db *DB) Lookup(ip uint32) (Category, bool) {
	n := db.root
	best := Unknown
	found := false
	bits := 0
	if n.terminal {
		best, found = n.category, true
	}
	for depth := 0; depth < 32 && n != nil; depth++ {
		bit := ip >> (31 - uint(depth)) & 1
		n = n.children[bit]
		if n != nil && n.terminal {
			best, found, bits = n.category, true, depth+1
		}
	}
	if cat, ok, _ := db.lookupTemp(ip, bits, found); ok {
		return cat, true
	}
	return best, found
}

// LookupString parses a dotted-quad address and looks it up.
func (db *DB) LookupString(ip string) (Category, bool, error) {
	addr, err := ParseIPv4(ip)
	if err != nil {
		return Unknown, false, err
	}
	cat, ok := db.Lookup(addr)
	return cat, ok, nil
}

// Len returns the number of distinct prefixes stored.
func (db *DB) Len() int { return db.count }

// Walk visits every stored prefix in ascending address order, calling fn
// with the prefix and its category. Walking stops early if fn returns
// false.
func (db *DB) Walk(fn func(Prefix, Category) bool) {
	var visit func(n *node, ip uint32, depth int) bool
	visit = func(n *node, ip uint32, depth int) bool {
		if n == nil {
			return true
		}
		if n.terminal {
			if !fn(Prefix{IP: ip, Bits: depth}, n.category) {
				return false
			}
		}
		if !visit(n.children[0], ip, depth+1) {
			return false
		}
		return visit(n.children[1], ip|1<<(31-uint(depth)), depth+1)
	}
	visit(db.root, 0, 0)
}
