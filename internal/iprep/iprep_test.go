package iprep

import (
	"testing"
	"testing/quick"
)

func TestParseFormatIPv4(t *testing.T) {
	tests := []struct {
		give string
		want uint32
	}{
		{"0.0.0.0", 0},
		{"255.255.255.255", 0xffffffff},
		{"10.0.0.1", 10<<24 | 1},
		{"192.168.1.2", 192<<24 | 168<<16 | 1<<8 | 2},
	}
	for _, tt := range tests {
		got, err := ParseIPv4(tt.give)
		if err != nil {
			t.Errorf("ParseIPv4(%q): %v", tt.give, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseIPv4(%q) = %#x, want %#x", tt.give, got, tt.want)
		}
		if back := FormatIPv4(got); back != tt.give {
			t.Errorf("FormatIPv4(%#x) = %q, want %q", got, back, tt.give)
		}
	}
}

func TestParseIPv4Errors(t *testing.T) {
	for _, bad := range []string{
		"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3",
		"-1.0.0.0", "1.2.3.4567",
	} {
		if _, err := ParseIPv4(bad); err == nil {
			t.Errorf("ParseIPv4(%q) succeeded", bad)
		}
	}
}

func TestIPv4RoundTripProperty(t *testing.T) {
	f := func(ip uint32) bool {
		back, err := ParseIPv4(FormatIPv4(ip))
		return err == nil && back == ip
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestParseCIDR(t *testing.T) {
	p, err := ParseCIDR("10.1.2.3/16")
	if err != nil {
		t.Fatal(err)
	}
	// Host bits are zeroed.
	if p.String() != "10.1.0.0/16" {
		t.Errorf("normalised prefix = %s, want 10.1.0.0/16", p)
	}
	if p.Size() != 1<<16 {
		t.Errorf("size = %d", p.Size())
	}
	in, _ := ParseIPv4("10.1.200.7")
	out, _ := ParseIPv4("10.2.0.1")
	if !p.Contains(in) || p.Contains(out) {
		t.Error("Contains wrong")
	}
	if got := p.Nth(3); got != p.IP+3 {
		t.Errorf("Nth(3) = %#x", got)
	}
	// Nth wraps within the prefix.
	if got := p.Nth(p.Size() + 5); got != p.IP+5 {
		t.Errorf("Nth wrap = %#x", got)
	}

	for _, bad := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "x/8"} {
		if _, err := ParseCIDR(bad); err == nil {
			t.Errorf("ParseCIDR(%q) succeeded", bad)
		}
	}
}

func TestMustCIDRPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCIDR on invalid input did not panic")
		}
	}()
	MustCIDR("not-a-cidr")
}

func TestTrieLongestPrefixMatch(t *testing.T) {
	db := NewDB()
	if err := db.InsertCIDR("10.0.0.0/8", Residential); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertCIDR("10.5.0.0/16", Datacenter); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertCIDR("10.5.7.0/24", KnownScraper); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		ip   string
		want Category
		ok   bool
	}{
		{"10.1.1.1", Residential, true},
		{"10.5.1.1", Datacenter, true},
		{"10.5.7.200", KnownScraper, true},
		{"11.0.0.1", Unknown, false},
	}
	for _, tt := range tests {
		cat, ok, err := db.LookupString(tt.ip)
		if err != nil {
			t.Fatalf("lookup %s: %v", tt.ip, err)
		}
		if cat != tt.want || ok != tt.ok {
			t.Errorf("Lookup(%s) = %v/%v, want %v/%v", tt.ip, cat, ok, tt.want, tt.ok)
		}
	}
	if db.Len() != 3 {
		t.Errorf("Len = %d, want 3", db.Len())
	}
	if _, _, err := db.LookupString("bogus"); err == nil {
		t.Error("LookupString accepted a bogus address")
	}
}

func TestTrieOverwrite(t *testing.T) {
	db := NewDB()
	p := MustCIDR("172.16.0.0/12")
	db.Insert(p, Datacenter)
	db.Insert(p, KnownScraper) // feed refresh: last wins
	if db.Len() != 1 {
		t.Errorf("Len = %d after overwrite, want 1", db.Len())
	}
	cat, ok := db.Lookup(MustCIDR("172.16.5.0/24").IP)
	if !ok || cat != KnownScraper {
		t.Errorf("overwritten category = %v", cat)
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	db := NewDB()
	db.Insert(Prefix{IP: 0, Bits: 0}, Residential)
	cat, ok := db.Lookup(0xdeadbeef)
	if !ok || cat != Residential {
		t.Error("/0 default route not matched")
	}
}

// Property: the trie agrees with a naive linear longest-prefix matcher.
func TestTrieAgainstNaiveProperty(t *testing.T) {
	type rule struct {
		p Prefix
		c Category
	}
	rules := []rule{
		{MustCIDR("10.0.0.0/8"), Residential},
		{MustCIDR("10.128.0.0/9"), Mobile},
		{MustCIDR("10.128.64.0/18"), Corporate},
		{MustCIDR("172.16.0.0/12"), Datacenter},
		{MustCIDR("172.16.99.0/24"), ProxyVPN},
		{MustCIDR("192.168.0.0/16"), TorExit},
		{MustCIDR("192.168.128.0/17"), SearchEngine},
		{MustCIDR("192.168.128.64/26"), KnownScraper},
	}
	db := NewDB()
	for _, r := range rules {
		db.Insert(r.p, r.c)
	}
	naive := func(ip uint32) (Category, bool) {
		best := -1
		var cat Category
		for _, r := range rules {
			if r.p.Contains(ip) && r.p.Bits > best {
				best = r.p.Bits
				cat = r.c
			}
		}
		return cat, best >= 0
	}
	f := func(ip uint32) bool {
		gotCat, gotOK := db.Lookup(ip)
		wantCat, wantOK := naive(ip)
		if gotOK != wantOK {
			return false
		}
		return !gotOK || gotCat == wantCat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestTrieWalk(t *testing.T) {
	db := NewDB()
	db.Insert(MustCIDR("10.0.0.0/8"), Residential)
	db.Insert(MustCIDR("172.16.0.0/12"), Datacenter)
	db.Insert(MustCIDR("10.5.0.0/16"), KnownScraper)

	var seen []string
	db.Walk(func(p Prefix, c Category) bool {
		seen = append(seen, p.String())
		return true
	})
	want := []string{"10.0.0.0/8", "10.5.0.0/16", "172.16.0.0/12"}
	if len(seen) != len(want) {
		t.Fatalf("walked %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("walk order: got %v, want %v", seen, want)
			break
		}
	}

	// Early termination.
	count := 0
	db.Walk(func(Prefix, Category) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early-stop walk visited %d prefixes", count)
	}
}

func TestBuildFeedCoverage(t *testing.T) {
	db := BuildFeed()
	tests := []struct {
		ranges []Prefix
		want   Category
	}{
		{ResidentialRanges, Residential},
		{MobileRanges, Mobile},
		{CorporateRanges, Corporate},
		{DatacenterRanges, Datacenter},
		{ProxyRanges, ProxyVPN},
		{TorExitRanges, TorExit},
		{SearchEngineRanges, SearchEngine},
		{KnownScraperRanges, KnownScraper},
	}
	for _, tt := range tests {
		for _, p := range tt.ranges {
			if cat, ok := db.Lookup(p.Nth(1)); !ok || cat != tt.want {
				t.Errorf("feed lookup inside %s = %v/%v, want %v", p, cat, ok, tt.want)
			}
		}
	}
	// The deliberately unlisted datacenter range has no feed entry.
	for _, p := range DatacenterUnlistedRanges {
		if _, ok := db.Lookup(p.Nth(1)); ok {
			t.Errorf("unlisted range %s unexpectedly present in feed", p)
		}
	}
}

func TestSuspicionOrdering(t *testing.T) {
	// The suspicion prior must rank confirmed-bad above grey above clean.
	if !(KnownScraper.Suspicion() > TorExit.Suspicion() &&
		TorExit.Suspicion() > ProxyVPN.Suspicion() &&
		ProxyVPN.Suspicion() > Datacenter.Suspicion() &&
		Datacenter.Suspicion() > Corporate.Suspicion() &&
		Corporate.Suspicion() > Residential.Suspicion()) {
		t.Error("suspicion ordering violated")
	}
	for _, c := range []Category{Unknown, Residential, Mobile, Corporate,
		Datacenter, ProxyVPN, TorExit, SearchEngine, KnownScraper} {
		s := c.Suspicion()
		if s < 0 || s > 1 {
			t.Errorf("%v suspicion %g out of [0,1]", c, s)
		}
		if c.String() == "" {
			t.Errorf("%v has empty name", int(c))
		}
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	db := BuildFeed()
	ips := make([]uint32, 1024)
	for i := range ips {
		ips[i] = uint32(i * 2654435761)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Lookup(ips[i%len(ips)])
	}
}
