package spsc

import (
	"context"
	"runtime"
	"sync"
	"testing"
)

func TestCapacityRounding(t *testing.T) {
	cases := []struct{ ask, want int }{
		{1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {8, 8}, {9, 16}, {100, 128}, {256, 256},
	}
	for _, c := range cases {
		if got := New[int](c.ask).Cap(); got != c.want {
			t.Errorf("New(%d).Cap() = %d, want %d", c.ask, got, c.want)
		}
	}
}

func TestFIFOAndWraparound(t *testing.T) {
	r := New[int](4)
	never := make(chan struct{})
	// Push/pop several multiples of the capacity so head and tail wrap
	// the mask repeatedly.
	next := 0
	for round := 0; round < 10; round++ {
		for i := 0; i < r.Cap(); i++ {
			if !r.TryPush(round*100 + i) {
				t.Fatalf("round %d: TryPush(%d) failed on non-full ring", round, i)
			}
		}
		if r.TryPush(-1) {
			t.Fatalf("round %d: TryPush succeeded on full ring", round)
		}
		if got := r.Len(); got != r.Cap() {
			t.Fatalf("round %d: Len = %d, want %d", round, got, r.Cap())
		}
		for i := 0; i < r.Cap(); i++ {
			v, ok := r.Pop(never)
			if !ok || v != round*100+i {
				t.Fatalf("round %d: Pop = (%d, %v), want (%d, true)", round, v, ok, round*100+i)
			}
		}
		if _, ok := r.TryPop(); ok {
			t.Fatalf("round %d: TryPop succeeded on empty ring", round)
		}
		next++
	}
}

func TestPopDrainsAfterClose(t *testing.T) {
	r := New[int](8)
	for i := 0; i < 5; i++ {
		if !r.TryPush(i) {
			t.Fatalf("TryPush(%d) failed", i)
		}
	}
	r.Close()
	if r.TryPush(99) {
		t.Fatal("TryPush succeeded after Close")
	}
	never := make(chan struct{})
	for i := 0; i < 5; i++ {
		v, ok := r.Pop(never)
		if !ok || v != i {
			t.Fatalf("Pop = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	if _, ok := r.Pop(never); ok {
		t.Fatal("Pop returned ok on a closed, drained ring")
	}
	if !r.Closed() {
		t.Fatal("Closed() = false after Close")
	}
}

func TestDoneUnblocksBothSides(t *testing.T) {
	r := New[int](2)
	ctx, cancel := context.WithCancel(context.Background())

	// Blocked consumer on an empty ring.
	popped := make(chan bool)
	go func() {
		_, ok := r.PopCtx(ctx)
		popped <- ok
	}()
	cancel()
	if ok := <-popped; ok {
		t.Fatal("PopCtx returned ok=true after cancellation")
	}

	// Blocked producer on a full ring.
	r2 := New[int](2)
	for r2.TryPush(1) {
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	pushed := make(chan bool)
	go func() {
		pushed <- r2.PushCtx(ctx2, 42)
	}()
	cancel2()
	if ok := <-pushed; ok {
		t.Fatal("PushCtx returned ok=true after cancellation")
	}
}

func TestCloseWakesBlockedConsumer(t *testing.T) {
	r := New[int](2)
	never := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := r.Pop(never); ok {
			t.Error("Pop returned ok on closed empty ring")
		}
	}()
	r.Close()
	<-done
}

func TestCloseWakesBlockedProducer(t *testing.T) {
	r := New[int](2)
	for r.TryPush(1) {
	}
	never := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if r.Push(never, 42) {
			t.Error("Push returned true on closed full ring")
		}
	}()
	r.Close()
	<-done
}

// TestConcurrentTransfer streams a large counted sequence through a small
// ring and asserts every value arrives exactly once, in order. Run under
// -race this exercises the publication edges (slot write before tail
// store, slot read after tail load) and the park/wake protocol from both
// sides; the tiny capacity forces constant full/empty transitions.
func TestConcurrentTransfer(t *testing.T) {
	const n = 200_000
	r := New[int](8)
	never := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if !r.Push(never, i) {
				t.Errorf("Push(%d) failed", i)
				return
			}
		}
		r.Close()
	}()
	for i := 0; i < n; i++ {
		v, ok := r.Pop(never)
		if !ok {
			t.Fatalf("Pop %d: stream ended early", i)
		}
		if v != i {
			t.Fatalf("Pop %d: got %d — order violated", i, v)
		}
	}
	if _, ok := r.Pop(never); ok {
		t.Fatal("extra item after final Pop")
	}
	wg.Wait()
}

// TestPointerSlotsCleared checks the consumer zeroes slots so the ring
// does not pin popped pointers against the GC.
func TestPointerSlotsCleared(t *testing.T) {
	r := New[*int](4)
	x := new(int)
	r.TryPush(x)
	r.TryPop()
	for _, p := range r.buf {
		if p != nil {
			t.Fatal("popped slot still holds its pointer")
		}
	}
}

func TestSteadyStateTransferAllocFree(t *testing.T) {
	r := New[int](16)
	allocs := testing.AllocsPerRun(1000, func() {
		if !r.TryPush(7) {
			t.Fatal("push failed")
		}
		if _, ok := r.TryPop(); !ok {
			t.Fatal("pop failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("TryPush+TryPop allocated %.1f/op, want 0", allocs)
	}
}

// TestLenApproximation pins Len between operations from the owning
// goroutines (exact when quiescent).
func TestLenApproximation(t *testing.T) {
	r := New[int](8)
	for i := 0; i < 5; i++ {
		r.TryPush(i)
	}
	if got := r.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
	r.TryPop()
	r.TryPop()
	if got := r.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	runtime.KeepAlive(r)
}
