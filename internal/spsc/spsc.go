// Package spsc provides a bounded single-producer/single-consumer ring
// buffer — the hand-off primitive behind the pipeline's relaxed-ordering
// sharded mode. Exactly one goroutine may push and exactly one may pop;
// under that contract every operation is wait-free in the common case
// (one slot write plus one atomic store), and the blocking paths park on
// a channel-based wake protocol instead of spinning or sleeping, so the
// ring behaves deterministically under the race detector and on a single
// core, where a spinning producer would starve the consumer it is
// waiting for.
//
// The implementation is the classic cached-index SPSC queue: head and
// tail are monotonically increasing uint64s masked onto a power-of-two
// slot array, the producer keeps a private copy of the last head it
// observed (so a push touches the consumer's cache line only when the
// ring looks full), and the consumer mirrors that with a cached tail.
// Go's atomic loads and stores provide the publication edges: a slot is
// written strictly before the tail store that makes it visible, and read
// strictly after the tail load that observed it.
package spsc

import (
	"context"
	"math/bits"
	"sync/atomic"
)

// pad keeps the producer's and consumer's mutable state on distinct
// cache lines; false sharing between head and tail otherwise doubles the
// coherence traffic of every hand-off.
type pad [64]byte

// Ring is a bounded SPSC queue of T. The zero value is not usable;
// construct with New. Methods are split by role: Push/TryPush/Close
// belong to the producer goroutine, Pop/TryPop to the consumer. Len and
// Cap are safe from any goroutine (Len is approximate under concurrency,
// which is all a gauge needs).
type Ring[T any] struct {
	buf  []T
	mask uint64

	_    pad
	tail atomic.Uint64 // next slot the producer writes
	// cachedHead is the producer's last observed head; producer-private.
	cachedHead uint64

	_    pad
	head atomic.Uint64 // next slot the consumer reads
	// cachedTail is the consumer's last observed tail; consumer-private.
	cachedTail uint64

	_      pad
	closed atomic.Bool

	// Park/wake protocol: a side waiting for space (producer) or items
	// (consumer) raises its flag, re-checks the condition, then blocks on
	// its channel. The peer checks the flag after every state change and
	// issues a non-blocking send when it is up, so the steady-state cost
	// when nobody waits is one atomic load per operation.
	prodWaiting atomic.Bool
	consWaiting atomic.Bool
	prodWake    chan struct{}
	consWake    chan struct{}
}

// New builds a ring with at least the requested capacity, rounded up to
// the next power of two (minimum 2). capacity must be positive.
func New[T any](capacity int) *Ring[T] {
	if capacity < 2 {
		capacity = 2
	}
	n := 1 << bits.Len64(uint64(capacity-1))
	return &Ring[T]{
		buf:      make([]T, n),
		mask:     uint64(n - 1),
		prodWake: make(chan struct{}, 1),
		consWake: make(chan struct{}, 1),
	}
}

// Cap returns the ring's slot count.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the approximate number of queued items; exact when the
// peer is quiescent. Intended for occupancy gauges.
func (r *Ring[T]) Len() int {
	t := r.tail.Load()
	h := r.head.Load()
	if t < h { // torn read across the two loads; clamp
		return 0
	}
	return int(t - h)
}

// Closed reports whether Close has been called.
func (r *Ring[T]) Closed() bool { return r.closed.Load() }

// TryPush appends v if a slot is free, returning false on a full or
// closed ring. Producer goroutine only.
func (r *Ring[T]) TryPush(v T) bool {
	if r.closed.Load() {
		return false
	}
	t := r.tail.Load()
	if t-r.cachedHead >= uint64(len(r.buf)) {
		r.cachedHead = r.head.Load()
		if t-r.cachedHead >= uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	r.wakeConsumer()
	return true
}

// Push appends v, blocking while the ring is full. It returns false —
// without having queued v — when done is closed first or Close was
// called. Producer goroutine only.
func (r *Ring[T]) Push(done <-chan struct{}, v T) bool {
	for {
		if r.TryPush(v) {
			return true
		}
		// Declare intent to sleep, then re-check: the consumer reads the
		// flag after moving head, so a pop racing this window is
		// guaranteed to either make space visible to the re-check or see
		// the flag and send the wake.
		r.prodWaiting.Store(true)
		if r.TryPush(v) {
			r.prodWaiting.Store(false)
			return true
		}
		if r.closed.Load() {
			r.prodWaiting.Store(false)
			return false
		}
		select {
		case <-r.prodWake:
		case <-done:
			r.prodWaiting.Store(false)
			return false
		}
		r.prodWaiting.Store(false)
	}
}

// PushCtx is Push against a context.
func (r *Ring[T]) PushCtx(ctx context.Context, v T) bool {
	return r.Push(ctx.Done(), v)
}

// TryPop removes and returns the oldest item; ok is false on an empty
// ring (closed or not). Consumer goroutine only.
func (r *Ring[T]) TryPop() (v T, ok bool) {
	h := r.head.Load()
	if h == r.cachedTail {
		r.cachedTail = r.tail.Load()
		if h == r.cachedTail {
			return v, false
		}
	}
	var zero T
	v = r.buf[h&r.mask]
	r.buf[h&r.mask] = zero // drop the ring's reference; T may hold pointers
	r.head.Store(h + 1)
	r.wakeProducer()
	return v, true
}

// Pop removes and returns the oldest item, blocking while the ring is
// empty. It returns ok=false when the ring is closed and fully drained,
// or when done is closed while waiting. Consumer goroutine only.
func (r *Ring[T]) Pop(done <-chan struct{}) (v T, ok bool) {
	for {
		if v, ok = r.TryPop(); ok {
			return v, true
		}
		r.consWaiting.Store(true)
		if v, ok = r.TryPop(); ok {
			r.consWaiting.Store(false)
			return v, true
		}
		// Closed is checked only after a failed pop so every item pushed
		// before Close drains before the consumer sees end-of-stream.
		if r.closed.Load() {
			r.consWaiting.Store(false)
			// One final pop covers a push that slid in between the check
			// above and a concurrent Close.
			return r.TryPop()
		}
		select {
		case <-r.consWake:
		case <-done:
			r.consWaiting.Store(false)
			return v, false
		}
		r.consWaiting.Store(false)
	}
}

// PopCtx is Pop against a context.
func (r *Ring[T]) PopCtx(ctx context.Context) (T, bool) {
	return r.Pop(ctx.Done())
}

// Close marks the stream complete: subsequent pushes fail, and Pop
// returns ok=false once the queued items drain. Close is idempotent and
// wakes both sides.
func (r *Ring[T]) Close() {
	r.closed.Store(true)
	r.wakeConsumer()
	r.wakeProducer()
}

// Reopen clears the closed flag and any stale wake tokens so a drained
// ring can carry a new stream. The caller must guarantee both sides are
// quiescent (no concurrent Push/Pop) — the same contract as reusing a
// pipeline between runs.
func (r *Ring[T]) Reopen() {
	r.closed.Store(false)
	r.prodWaiting.Store(false)
	r.consWaiting.Store(false)
	select {
	case <-r.prodWake:
	default:
	}
	select {
	case <-r.consWake:
	default:
	}
}

func (r *Ring[T]) wakeConsumer() {
	if r.consWaiting.Load() {
		select {
		case r.consWake <- struct{}{}:
		default:
		}
	}
}

func (r *Ring[T]) wakeProducer() {
	if r.prodWaiting.Load() {
		select {
		case r.prodWake <- struct{}{}:
		default:
		}
	}
}
