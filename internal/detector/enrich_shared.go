package detector

import (
	"sync"
	"sync/atomic"

	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
	"divscrape/internal/uaparse"
)

// SharedEnricher is the concurrency-safe counterpart of Enricher, built
// for the live middleware where requests from many connections enrich in
// parallel. Cache hits — the overwhelming steady state, since UA strings
// and client addresses repeat heavily — take only a read lock, so
// enrichment no longer serialises behind the per-shard detector lock; the
// write lock is taken briefly on misses to install the parsed result.
// One instance is shared by every shard: a UA parsed for one client is a
// hit for all.
type SharedEnricher struct {
	rep *iprep.DB
	seq atomic.Uint64

	mu      sync.RWMutex
	uaCache map[string]uaparse.Info
	ipCache map[string]ipInfo
}

// NewSharedEnricher returns a concurrency-safe enricher resolving
// reputation against rep (nil disables reputation enrichment).
func NewSharedEnricher(rep *iprep.DB) *SharedEnricher {
	return &SharedEnricher{
		rep:     rep,
		uaCache: make(map[string]uaparse.Info, 1024),
		ipCache: make(map[string]ipInfo, 4096),
	}
}

// EnrichInto overwrites every field of *req with the enriched view of
// entry. Safe for concurrent use; sequence numbers are globally unique
// but, unlike Enricher's, not guaranteed to match arrival order under
// concurrency.
func (e *SharedEnricher) EnrichInto(req *Request, entry logfmt.Entry) {
	req.Seq = e.seq.Add(1) - 1
	req.Entry = entry

	e.mu.RLock()
	ua, uaHit := e.uaCache[entry.UserAgent]
	info, ipHit := e.ipCache[entry.RemoteAddr]
	e.mu.RUnlock()

	if !uaHit {
		ua = uaparse.Parse(entry.UserAgent)
		e.mu.Lock()
		// Bound the cache against adversarial UA churn.
		if len(e.uaCache) < 1<<16 {
			e.uaCache[entry.UserAgent] = ua
		}
		e.mu.Unlock()
	}
	req.UA = ua

	if !ipHit {
		if ip, err := iprep.ParseIPv4(entry.RemoteAddr); err == nil {
			info.ip = ip
			if e.rep != nil {
				info.cat, _ = e.rep.Lookup(ip)
			}
		}
		e.mu.Lock()
		if len(e.ipCache) < 1<<20 {
			e.ipCache[entry.RemoteAddr] = info
		}
		e.mu.Unlock()
	}
	req.IP = info.ip
	req.IPCat = info.cat
}

// Reset clears the caches in place and restarts the sequence counter.
func (e *SharedEnricher) Reset() {
	e.mu.Lock()
	clear(e.uaCache)
	clear(e.ipCache)
	e.mu.Unlock()
	e.seq.Store(0)
}

// Reputation exposes the reputation database the enricher resolves
// against (nil when reputation enrichment is disabled). The cluster
// plane merges replicated overlay entries into it; lookups stay
// lock-free, so a merge never stalls enrichment.
func (e *SharedEnricher) Reputation() *iprep.DB { return e.rep }
