package detector

import (
	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
	"divscrape/internal/uaparse"
)

// Enricher turns raw log entries into Requests, caching the expensive
// parses: User-Agent strings repeat heavily (a handful of browser strings
// cover most human traffic) and reputation lookups repeat per client.
// Enricher is not safe for concurrent use; the pipeline owns one.
type Enricher struct {
	rep     *iprep.DB
	uaCache map[string]uaparse.Info
	ipCache map[string]ipInfo
	seq     uint64
}

type ipInfo struct {
	ip  uint32
	cat iprep.Category
}

// NewEnricher returns an enricher resolving reputation against rep, which
// may be nil to disable reputation enrichment.
func NewEnricher(rep *iprep.DB) *Enricher {
	return &Enricher{
		rep:     rep,
		uaCache: make(map[string]uaparse.Info, 1024),
		ipCache: make(map[string]ipInfo, 4096),
	}
}

// Enrich converts one entry, assigning the next sequence number.
func (e *Enricher) Enrich(entry logfmt.Entry) Request {
	var req Request
	e.EnrichInto(&req, entry)
	return req
}

// EnrichInto is Enrich with a caller-owned destination, so hot loops can
// reuse one Request (or a pooled one) instead of allocating per record.
// Every field of *req is overwritten.
func (e *Enricher) EnrichInto(req *Request, entry logfmt.Entry) {
	req.Seq = e.seq
	req.Entry = entry
	e.seq++

	ua, ok := e.uaCache[entry.UserAgent]
	if !ok {
		ua = uaparse.Parse(entry.UserAgent)
		// Bound the cache against adversarial UA churn.
		if len(e.uaCache) < 1<<16 {
			e.uaCache[entry.UserAgent] = ua
		}
	}
	req.UA = ua

	info, ok := e.ipCache[entry.RemoteAddr]
	if !ok {
		if ip, err := iprep.ParseIPv4(entry.RemoteAddr); err == nil {
			info.ip = ip
			if e.rep != nil {
				info.cat, _ = e.rep.Lookup(ip)
			}
		}
		if len(e.ipCache) < 1<<20 {
			e.ipCache[entry.RemoteAddr] = info
		}
	}
	req.IP = info.ip
	req.IPCat = info.cat
}

// Seq returns the number of entries enriched so far.
func (e *Enricher) Seq() uint64 { return e.seq }

// Reset clears caches and the sequence counter. The cache maps are cleared
// in place — their buckets stay allocated, so replaying a dataset after a
// reset re-warms without re-growing them.
func (e *Enricher) Reset() {
	clear(e.uaCache)
	clear(e.ipCache)
	e.seq = 0
}
