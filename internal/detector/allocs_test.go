package detector

import (
	"testing"
	"time"

	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
)

// Enrichment is on the parse+enrich hot path and must be allocation-free
// in steady state: UA and IP parses are cached, and EnrichInto writes into
// a caller-owned Request.
func TestEnrichZeroAllocsSteadyState(t *testing.T) {
	e := NewEnricher(iprep.BuildFeed())
	entry := logfmt.Entry{
		RemoteAddr: "10.1.2.3", Identity: "-", AuthUser: "-",
		Time:   time.Date(2018, 3, 11, 6, 25, 14, 0, time.UTC),
		Method: "GET", Path: "/product/17", Proto: "HTTP/1.1",
		Status: 200, Bytes: 52344, Referer: "/category/3",
		UserAgent: "Mozilla/5.0 (X11; Linux x86_64; rv:58.0) Gecko/20100101 Firefox/58.0",
	}
	var req Request
	// Warm the UA and IP caches.
	e.EnrichInto(&req, entry)

	allocs := testing.AllocsPerRun(200, func() {
		e.EnrichInto(&req, entry)
	})
	if allocs != 0 {
		t.Errorf("EnrichInto allocates %.1f/op in steady state, want 0", allocs)
	}

	// The by-value variant must stay allocation-free too (the Request
	// does not escape).
	allocs = testing.AllocsPerRun(200, func() {
		req = e.Enrich(entry)
	})
	if allocs != 0 {
		t.Errorf("Enrich allocates %.1f/op in steady state, want 0", allocs)
	}
}
