package detector

import (
	"divscrape/internal/statecodec"
)

// The durable state plane's detector-facing contracts. A detector that
// can serialise its per-client state implements statecodec.Snapshotter
// (re-exported here as Snapshotter so detector packages need only one
// import); one that can additionally merge state across key-partitioned
// shard instances and redistribute it over a different partition
// implements ShardedSnapshotter, which is what lets a checkpoint taken
// at one shard count resume at another and lets httpguard reshard a
// running guard without dropping per-client histories.

// Snapshotter is the single-instance snapshot capability. SnapshotInto
// serialises all per-client dynamic state (configuration travels with
// the constructing code, not the snapshot); RestoreFrom rebuilds it into
// an identically configured instance and must return an error — never
// panic — on corrupt input.
type Snapshotter = statecodec.Snapshotter

// ShardedSnapshotter extends Snapshotter across a key-partitioned shard
// set. Both methods are invoked on one instance (conventionally shard 0)
// with the full instance list, which must be of the same concrete type
// and hold key-disjoint client populations.
type ShardedSnapshotter interface {
	Snapshotter
	// SnapshotShardsInto writes the canonical union of the instances'
	// state. The encoding must be identical to what a single instance
	// holding all those clients would write, so snapshots are
	// shard-topology independent.
	SnapshotShardsInto(w *statecodec.Writer, shards []Detector) error
	// RestoreShards distributes a canonical snapshot across the
	// instances: each client's state goes to shards[part(ip)], where ip
	// is the client's numeric address. Every instance is cleared first.
	RestoreShards(r *statecodec.Reader, shards []Detector, part func(ip uint32) int) error
}

// tagEnricher opens the enricher block in a snapshot.
const tagEnricher uint16 = 0x4501

// SnapshotInto implements Snapshotter. Only the sequence counter is
// state: the parse caches are pure memoisation, rebuilt on demand with
// identical results, so serialising them would bloat snapshots without
// changing a single decision.
func (e *Enricher) SnapshotInto(w *statecodec.Writer) {
	w.Tag(tagEnricher)
	w.Uint64(e.seq)
}

// RestoreFrom implements Snapshotter. The caches are left as they are —
// a warm cache is never wrong, only possibly absent.
func (e *Enricher) RestoreFrom(r *statecodec.Reader) error {
	if err := r.Expect(tagEnricher); err != nil {
		return err
	}
	e.seq = r.Uint64()
	return r.Err()
}
