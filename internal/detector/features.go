package detector

import "fmt"

// FeatureIndex is an ordered, immutable name→slot table shared between a
// detector and its composite scorer, so both sides agree on the layout of
// the flat []float64 feature vectors used on the hot path. Declaring the
// index once per detector replaces the per-request map[string]float64 the
// detectors previously allocated: features are addressed by integer slot
// and the vector is reused across requests.
type FeatureIndex struct {
	names []string
	index map[string]int
}

// NewFeatureIndex freezes names into an index. Names must be unique and
// non-empty; violations panic, as the feature list is a compile-time
// constant of each detector.
func NewFeatureIndex(names ...string) *FeatureIndex {
	if len(names) == 0 {
		panic("detector: feature index needs at least one name")
	}
	fi := &FeatureIndex{
		names: append([]string(nil), names...),
		index: make(map[string]int, len(names)),
	}
	for i, n := range fi.names {
		if n == "" {
			panic(fmt.Sprintf("detector: feature %d has empty name", i))
		}
		if _, dup := fi.index[n]; dup {
			panic(fmt.Sprintf("detector: duplicate feature %q", n))
		}
		fi.index[n] = i
	}
	return fi
}

// Len returns the number of features (the length of a matching vector).
func (fi *FeatureIndex) Len() int { return len(fi.names) }

// Names returns the feature names in slot order. The caller must not
// mutate the result.
func (fi *FeatureIndex) Names() []string { return fi.names }

// Index returns the slot of name, or -1 when unknown.
func (fi *FeatureIndex) Index(name string) int {
	if i, ok := fi.index[name]; ok {
		return i
	}
	return -1
}

// NewVector allocates a zeroed vector matching the index layout.
func (fi *FeatureIndex) NewVector() []float64 { return make([]float64, len(fi.names)) }
