package detector

import (
	"testing"
	"time"

	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
	"divscrape/internal/uaparse"
)

func TestArchetypeStringRoundTrip(t *testing.T) {
	for _, a := range Archetypes() {
		name := a.String()
		if name == "" {
			t.Errorf("archetype %d has empty name", int(a))
		}
		back, ok := ParseArchetype(name)
		if !ok || back != a {
			t.Errorf("ParseArchetype(%q) = %v/%v", name, back, ok)
		}
	}
	if _, ok := ParseArchetype("nonsense"); ok {
		t.Error("parsed a nonsense archetype")
	}
	if Archetype(99).String() == "" {
		t.Error("unknown archetype renders empty")
	}
}

func TestMaliciousPartition(t *testing.T) {
	malicious := map[Archetype]bool{
		ArchetypeScraperNaive:      true,
		ArchetypeScraperAggressive: true,
		ArchetypeScraperHeadless:   true,
		ArchetypeScraperStealth:    true,
		ArchetypeScraperKnownInfra: true,
	}
	for _, a := range Archetypes() {
		if a.Malicious() != malicious[a] {
			t.Errorf("%s.Malicious() = %v", a, a.Malicious())
		}
	}
	l := Label{Archetype: ArchetypeScraperNaive}
	if !l.Malicious() {
		t.Error("label maliciousness should follow the archetype")
	}
}

func entry(ip, ua string) logfmt.Entry {
	return logfmt.Entry{
		RemoteAddr: ip, Identity: "-", AuthUser: "-",
		Time:   time.Date(2018, 3, 11, 0, 0, 0, 0, time.UTC),
		Method: "GET", Path: "/", Proto: "HTTP/1.1",
		Status: 200, Bytes: 10, Referer: "-", UserAgent: ua,
	}
}

func TestEnricherFillsEverything(t *testing.T) {
	e := NewEnricher(iprep.BuildFeed())
	dcIP := iprep.FormatIPv4(iprep.DatacenterRanges[0].Nth(7))
	req := e.Enrich(entry(dcIP, "curl/7.58.0"))
	if req.Seq != 0 {
		t.Errorf("first seq = %d", req.Seq)
	}
	if req.UA.Class != uaparse.ClassTool {
		t.Errorf("UA class = %v", req.UA.Class)
	}
	if req.IPCat != iprep.Datacenter {
		t.Errorf("IP category = %v", req.IPCat)
	}
	if req.IP == 0 {
		t.Error("IP not parsed")
	}
	req2 := e.Enrich(entry(dcIP, "curl/7.58.0"))
	if req2.Seq != 1 {
		t.Errorf("second seq = %d", req2.Seq)
	}
	if e.Seq() != 2 {
		t.Errorf("Seq() = %d", e.Seq())
	}
}

func TestEnricherCachesAreCoherent(t *testing.T) {
	e := NewEnricher(iprep.BuildFeed())
	// The same UA string parsed twice must classify identically (cache
	// hit path vs miss path).
	first := e.Enrich(entry("10.0.0.1", "python-requests/2.18.4"))
	second := e.Enrich(entry("10.0.0.1", "python-requests/2.18.4"))
	if first.UA != second.UA || first.IPCat != second.IPCat || first.IP != second.IP {
		t.Error("cached enrichment differs from fresh enrichment")
	}
}

func TestEnricherNilReputation(t *testing.T) {
	e := NewEnricher(nil)
	req := e.Enrich(entry("172.16.0.1", "curl/7.58.0"))
	if req.IPCat != iprep.Unknown {
		t.Errorf("nil feed should leave category Unknown, got %v", req.IPCat)
	}
	if req.IP == 0 {
		t.Error("IP should still parse without a feed")
	}
}

func TestEnricherInvalidAddress(t *testing.T) {
	e := NewEnricher(iprep.BuildFeed())
	req := e.Enrich(entry("not-an-ip", "curl/7.58.0"))
	if req.IP != 0 || req.IPCat != iprep.Unknown {
		t.Errorf("invalid address enriched to %d/%v", req.IP, req.IPCat)
	}
}

func TestEnricherReset(t *testing.T) {
	e := NewEnricher(iprep.BuildFeed())
	e.Enrich(entry("10.0.0.1", "x"))
	e.Reset()
	if e.Seq() != 0 {
		t.Error("Reset did not clear the sequence")
	}
	req := e.Enrich(entry("10.0.0.1", "x"))
	if req.Seq != 0 {
		t.Errorf("post-reset seq = %d", req.Seq)
	}
}

func BenchmarkEnrich(b *testing.B) {
	e := NewEnricher(iprep.BuildFeed())
	entries := []logfmt.Entry{
		entry("10.0.0.1", "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36"),
		entry("172.16.0.9", "python-requests/2.18.4"),
		entry("192.168.96.5", "curl/7.58.0"),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Enrich(entries[i%len(entries)])
	}
}
