// Package detector defines the contract shared by all scraping detectors:
// the enriched per-request view, the verdict they emit, and the ground
// truth labels the synthetic workload attaches. Concrete detectors live in
// internal/sentinel (commercial-style) and internal/arcane (behavioural,
// in-house-style); adjudication over several detectors lives in
// internal/ensemble.
package detector

import (
	"strconv"
	"time"

	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
	"divscrape/internal/uaparse"
)

// Request is one access-log record enriched with the parse results every
// detector needs. The pipeline builds it once per record and hands the
// same value to each detector, mirroring how the paper's two tools
// monitored "the same application layer interactions".
type Request struct {
	// Seq is the zero-based position of the record in the stream; verdict
	// streams from different detectors align on it.
	Seq uint64
	// Entry is the parsed access-log record.
	Entry logfmt.Entry
	// UA is the parsed User-Agent.
	UA uaparse.Info
	// IP is the numeric form of Entry.RemoteAddr.
	IP uint32
	// IPCat is the reputation category of IP; iprep.Unknown when no feed
	// covers it.
	IPCat iprep.Category
}

// MaxReasons is the number of explanation slots a Verdict carries inline.
// Three matches what operators scan in an alert console; deeper forensics
// re-derive the full contribution list offline.
const MaxReasons = 3

// ReasonList is a fixed-capacity list of interned reason strings carried
// inline by a Verdict. Detectors fill it with pre-interned signal-name
// constants (their feature names), so recording reasons performs no
// allocation — this replaced the per-alert []string that dominated the
// decision plane's garbage. The zero value is empty and ready to use, and
// two lists with the same contents compare equal with ==.
type ReasonList struct {
	n uint8
	a [MaxReasons]string
}

// ReasonsOf builds a list from names; entries beyond MaxReasons are
// dropped. Intended for tests and adjudicators, not hot paths.
func ReasonsOf(names ...string) ReasonList {
	var r ReasonList
	for _, s := range names {
		r.Append(s)
	}
	return r
}

// Append adds name to the list; once full, further appends are dropped
// (reasons are ordered most significant first, so overflow loses only the
// weakest signals).
func (r *ReasonList) Append(name string) {
	if int(r.n) < MaxReasons {
		r.a[r.n] = name
		r.n++
	}
}

// Len returns the number of recorded reasons.
func (r *ReasonList) Len() int { return int(r.n) }

// At returns the i-th reason (0 ≤ i < Len).
func (r *ReasonList) At(i int) string { return r.a[i] }

// View returns the recorded reasons as a slice aliasing the list's inline
// storage: no allocation, but valid only while the Verdict holding the
// list is live — for pipeline decisions, that means during the sink call.
func (r *ReasonList) View() []string { return r.a[:r.n] }

// Strings returns an allocated copy of the reasons, for callers that keep
// them past the decision's lifetime (reports, logs).
func (r *ReasonList) Strings() []string {
	if r.n == 0 {
		return nil
	}
	return append([]string(nil), r.a[:r.n]...)
}

// Join concatenates the reasons with sep (report formatting; allocates).
func (r *ReasonList) Join(sep string) string {
	switch r.n {
	case 0:
		return ""
	case 1:
		return r.a[0]
	}
	n := len(sep) * (int(r.n) - 1)
	for _, s := range r.a[:r.n] {
		n += len(s)
	}
	b := make([]byte, 0, n)
	for i, s := range r.a[:r.n] {
		if i > 0 {
			b = append(b, sep...)
		}
		b = append(b, s...)
	}
	return string(b)
}

// Verdict is one detector's judgement of one request. It is a flat value —
// no heap references beyond interned string constants — so verdicts can be
// pooled, batched and copied freely without aliasing hazards.
type Verdict struct {
	// Alert reports whether the detector flags the request as scraping.
	Alert bool
	// Score is the detector's internal suspicion in [0, 1); thresholding
	// Score yields Alert, and ROC sweeps re-threshold it offline.
	Score float64
	// Reasons names the dominant signals behind an alert, most significant
	// first. Empty for non-alerts (kept cheap on the hot path).
	Reasons ReasonList
}

// Detector is a streaming scraping detector. Implementations are stateful
// (per-client histories) and must be fed requests in timestamp order; they
// are not safe for concurrent use. The pipeline gives each detector its own
// goroutine instead.
type Detector interface {
	// Name identifies the detector in reports.
	Name() string
	// Inspect judges one request, updating internal per-client state.
	Inspect(req *Request) Verdict
	// InspectInto is Inspect writing into a caller-owned Verdict, which hot
	// paths recycle through pooled batches instead of returning by value.
	// Every field of *out is overwritten.
	InspectInto(req *Request, out *Verdict)
	// Reset clears all per-client state, returning the detector to its
	// just-constructed condition.
	Reset()
}

// Explainer is implemented by detectors that can expose the feature
// vector behind their most recent verdict, so the provenance plane can
// snapshot *why* a detector scored a request — the per-decision evidence
// the paper's diversity argument needs to be auditable.
//
// LastFeatures returns the vector computed by the last InspectInto call
// and whether one was computed at all: requests short-circuited before
// scoring (authenticated users, verified search bots, warmup) leave no
// vector, and ok is false. The returned slice aliases the detector's
// reusable scratch — valid only until the next InspectInto on the same
// instance, and only meaningful from the goroutine driving it; callers
// that keep it must copy. FeatureNames aligns index-for-index with the
// vector and is immutable.
type Explainer interface {
	FeatureNames() []string
	LastFeatures() ([]float64, bool)
}

// Evictable is implemented by detectors (and other stateful components)
// that can proactively drop per-client state untouched since cutoff,
// returning the number of entries evicted. It is the hook the windowed
// eviction sweeper drives so steady-state memory stays O(clients active
// in the window) over unbounded streams.
//
// Contract: calling EvictBefore with cutoff at least the component's idle
// timeout behind stream time must not change any future verdict — the
// evicted state is exactly what lazy idle expiry would have dropped
// before it was next read. A more aggressive cutoff trades fidelity
// (sessions restart early) for memory; the pipeline never does that on
// its own.
type Evictable interface {
	EvictBefore(cutoff time.Time) int
}

// Factory constructs a fresh, independent Detector instance. The sharded
// pipeline uses factories to give each worker shard a private instance of
// every detector, so per-client session state needs no locks: a client's
// requests always hash to the same shard, and each shard's instances see
// exactly the per-client substream they would have seen in a sequential
// run.
type Factory func() (Detector, error)

// Archetype labels the kind of actor that generated a request. The first
// group is benign, the second malicious; see Malicious.
type Archetype int

const (
	// ArchetypeHuman is an interactive shopper.
	ArchetypeHuman Archetype = iota + 1
	// ArchetypeSearchBot is a well-behaved declared search crawler.
	ArchetypeSearchBot
	// ArchetypeMonitor is an uptime monitor.
	ArchetypeMonitor
	// ArchetypePartnerAPI is an authenticated partner integration calling
	// the price API with credentials (tool UA but sanctioned).
	ArchetypePartnerAPI

	// ArchetypeScraperNaive is a crude scraping kit: tool User-Agent,
	// datacenter addresses, no JavaScript, steady machine pacing.
	ArchetypeScraperNaive
	// ArchetypeScraperAggressive is a high-rate kit hiding behind canned
	// (stale) browser User-Agents, enumerating the catalogue.
	ArchetypeScraperAggressive
	// ArchetypeScraperHeadless drives a real headless browser with a clean
	// spoofed UA: it executes the JavaScript challenge and paces under rate
	// limits, but crawls mechanically.
	ArchetypeScraperHeadless
	// ArchetypeScraperStealth is a distributed botnet on residential
	// proxies: tiny per-IP volumes, rotating canned UAs, no JavaScript.
	ArchetypeScraperStealth
	// ArchetypeScraperKnownInfra operates from blocklisted scraping
	// infrastructure ranges.
	ArchetypeScraperKnownInfra
)

var archetypeNames = map[Archetype]string{
	ArchetypeHuman:             "human",
	ArchetypeSearchBot:         "search-bot",
	ArchetypeMonitor:           "monitor",
	ArchetypePartnerAPI:        "partner-api",
	ArchetypeScraperNaive:      "scraper-naive",
	ArchetypeScraperAggressive: "scraper-aggressive",
	ArchetypeScraperHeadless:   "scraper-headless",
	ArchetypeScraperStealth:    "scraper-stealth",
	ArchetypeScraperKnownInfra: "scraper-known-infra",
}

// String returns the archetype's stable name (used in label files).
func (a Archetype) String() string {
	if s, ok := archetypeNames[a]; ok {
		return s
	}
	return "archetype(" + strconv.Itoa(int(a)) + ")"
}

// ParseArchetype inverts String.
func ParseArchetype(s string) (Archetype, bool) {
	for a, name := range archetypeNames {
		if name == s {
			return a, true
		}
	}
	return 0, false
}

// Malicious reports whether the archetype is a scraper.
func (a Archetype) Malicious() bool {
	switch a {
	case ArchetypeScraperNaive, ArchetypeScraperAggressive, ArchetypeScraperHeadless,
		ArchetypeScraperStealth, ArchetypeScraperKnownInfra:
		return true
	default:
		return false
	}
}

// Archetypes lists all archetypes in declaration order.
func Archetypes() []Archetype {
	return []Archetype{
		ArchetypeHuman, ArchetypeSearchBot, ArchetypeMonitor, ArchetypePartnerAPI,
		ArchetypeScraperNaive, ArchetypeScraperAggressive, ArchetypeScraperHeadless,
		ArchetypeScraperStealth, ArchetypeScraperKnownInfra,
	}
}

// Label is the ground truth the generator attaches to each request.
type Label struct {
	// ActorID identifies the generating actor within the run.
	ActorID int
	// Archetype is the actor's kind.
	Archetype Archetype
}

// Malicious reports whether the labelled request came from a scraper.
func (l Label) Malicious() bool { return l.Archetype.Malicious() }
