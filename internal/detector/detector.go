// Package detector defines the contract shared by all scraping detectors:
// the enriched per-request view, the verdict they emit, and the ground
// truth labels the synthetic workload attaches. Concrete detectors live in
// internal/sentinel (commercial-style) and internal/arcane (behavioural,
// in-house-style); adjudication over several detectors lives in
// internal/ensemble.
package detector

import (
	"strconv"

	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
	"divscrape/internal/uaparse"
)

// Request is one access-log record enriched with the parse results every
// detector needs. The pipeline builds it once per record and hands the
// same value to each detector, mirroring how the paper's two tools
// monitored "the same application layer interactions".
type Request struct {
	// Seq is the zero-based position of the record in the stream; verdict
	// streams from different detectors align on it.
	Seq uint64
	// Entry is the parsed access-log record.
	Entry logfmt.Entry
	// UA is the parsed User-Agent.
	UA uaparse.Info
	// IP is the numeric form of Entry.RemoteAddr.
	IP uint32
	// IPCat is the reputation category of IP; iprep.Unknown when no feed
	// covers it.
	IPCat iprep.Category
}

// Verdict is one detector's judgement of one request.
type Verdict struct {
	// Alert reports whether the detector flags the request as scraping.
	Alert bool
	// Score is the detector's internal suspicion in [0, 1); thresholding
	// Score yields Alert, and ROC sweeps re-threshold it offline.
	Score float64
	// Reasons names the dominant signals behind an alert, most significant
	// first. Empty for non-alerts (kept cheap on the hot path).
	Reasons []string
}

// Detector is a streaming scraping detector. Implementations are stateful
// (per-client histories) and must be fed requests in timestamp order; they
// are not safe for concurrent use. The pipeline gives each detector its own
// goroutine instead.
type Detector interface {
	// Name identifies the detector in reports.
	Name() string
	// Inspect judges one request, updating internal per-client state.
	Inspect(req *Request) Verdict
	// Reset clears all per-client state, returning the detector to its
	// just-constructed condition.
	Reset()
}

// Factory constructs a fresh, independent Detector instance. The sharded
// pipeline uses factories to give each worker shard a private instance of
// every detector, so per-client session state needs no locks: a client's
// requests always hash to the same shard, and each shard's instances see
// exactly the per-client substream they would have seen in a sequential
// run.
type Factory func() (Detector, error)

// Archetype labels the kind of actor that generated a request. The first
// group is benign, the second malicious; see Malicious.
type Archetype int

const (
	// ArchetypeHuman is an interactive shopper.
	ArchetypeHuman Archetype = iota + 1
	// ArchetypeSearchBot is a well-behaved declared search crawler.
	ArchetypeSearchBot
	// ArchetypeMonitor is an uptime monitor.
	ArchetypeMonitor
	// ArchetypePartnerAPI is an authenticated partner integration calling
	// the price API with credentials (tool UA but sanctioned).
	ArchetypePartnerAPI

	// ArchetypeScraperNaive is a crude scraping kit: tool User-Agent,
	// datacenter addresses, no JavaScript, steady machine pacing.
	ArchetypeScraperNaive
	// ArchetypeScraperAggressive is a high-rate kit hiding behind canned
	// (stale) browser User-Agents, enumerating the catalogue.
	ArchetypeScraperAggressive
	// ArchetypeScraperHeadless drives a real headless browser with a clean
	// spoofed UA: it executes the JavaScript challenge and paces under rate
	// limits, but crawls mechanically.
	ArchetypeScraperHeadless
	// ArchetypeScraperStealth is a distributed botnet on residential
	// proxies: tiny per-IP volumes, rotating canned UAs, no JavaScript.
	ArchetypeScraperStealth
	// ArchetypeScraperKnownInfra operates from blocklisted scraping
	// infrastructure ranges.
	ArchetypeScraperKnownInfra
)

var archetypeNames = map[Archetype]string{
	ArchetypeHuman:             "human",
	ArchetypeSearchBot:         "search-bot",
	ArchetypeMonitor:           "monitor",
	ArchetypePartnerAPI:        "partner-api",
	ArchetypeScraperNaive:      "scraper-naive",
	ArchetypeScraperAggressive: "scraper-aggressive",
	ArchetypeScraperHeadless:   "scraper-headless",
	ArchetypeScraperStealth:    "scraper-stealth",
	ArchetypeScraperKnownInfra: "scraper-known-infra",
}

// String returns the archetype's stable name (used in label files).
func (a Archetype) String() string {
	if s, ok := archetypeNames[a]; ok {
		return s
	}
	return "archetype(" + strconv.Itoa(int(a)) + ")"
}

// ParseArchetype inverts String.
func ParseArchetype(s string) (Archetype, bool) {
	for a, name := range archetypeNames {
		if name == s {
			return a, true
		}
	}
	return 0, false
}

// Malicious reports whether the archetype is a scraper.
func (a Archetype) Malicious() bool {
	switch a {
	case ArchetypeScraperNaive, ArchetypeScraperAggressive, ArchetypeScraperHeadless,
		ArchetypeScraperStealth, ArchetypeScraperKnownInfra:
		return true
	default:
		return false
	}
}

// Archetypes lists all archetypes in declaration order.
func Archetypes() []Archetype {
	return []Archetype{
		ArchetypeHuman, ArchetypeSearchBot, ArchetypeMonitor, ArchetypePartnerAPI,
		ArchetypeScraperNaive, ArchetypeScraperAggressive, ArchetypeScraperHeadless,
		ArchetypeScraperStealth, ArchetypeScraperKnownInfra,
	}
}

// Label is the ground truth the generator attaches to each request.
type Label struct {
	// ActorID identifies the generating actor within the run.
	ActorID int
	// Archetype is the actor's kind.
	Archetype Archetype
}

// Malicious reports whether the labelled request came from a scraper.
func (l Label) Malicious() bool { return l.Archetype.Malicious() }
