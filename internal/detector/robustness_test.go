package detector_test

// Failure-injection suite: adversarial and degraded inputs against the
// full detection stack. Real log pipelines deliver clock skew, replayed
// segments, absurd field values and hostile User-Agent strings; none of
// it may panic a detector or poison its state for other clients.

import (
	"strings"
	"testing"
	"time"

	"divscrape/internal/arcane"
	"divscrape/internal/detector"
	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
	"divscrape/internal/sentinel"
)

func detectors(t *testing.T) []detector.Detector {
	t.Helper()
	sen, err := sentinel.New(sentinel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	arc, err := arcane.New(arcane.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return []detector.Detector{sen, arc}
}

func feed(t *testing.T, dets []detector.Detector, e *detector.Enricher, entry logfmt.Entry) {
	t.Helper()
	req := e.Enrich(entry)
	for _, d := range dets {
		v := d.Inspect(&req)
		if v.Score < 0 || v.Score >= 1 {
			t.Fatalf("%s produced out-of-range score %g", d.Name(), v.Score)
		}
	}
}

func baseEntry(at time.Time) logfmt.Entry {
	return logfmt.Entry{
		RemoteAddr: "10.0.0.1", Identity: "-", AuthUser: "-",
		Time: at, Method: "GET", Path: "/product/1", Proto: "HTTP/1.1",
		Status: 200, Bytes: 100, Referer: "-",
		UserAgent: "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36",
	}
}

func TestClockSkewDoesNotPanic(t *testing.T) {
	dets := detectors(t)
	e := detector.NewEnricher(iprep.BuildFeed())
	base := time.Date(2018, 3, 12, 10, 0, 0, 0, time.UTC)

	// Timestamps jump backwards (log shipper reordering, NTP step) and
	// far forwards (rotation gap).
	times := []time.Time{
		base,
		base.Add(10 * time.Second),
		base.Add(-30 * time.Minute), // backwards past session start
		base.Add(5 * time.Second),
		base.Add(48 * time.Hour), // far forward
		base.Add(48*time.Hour + time.Second),
		{}, // zero time
		base.Add(49 * time.Hour),
	}
	for i, at := range times {
		entry := baseEntry(at)
		entry.Path = "/product/" + strings.Repeat("1", 1+i%3)
		feed(t, dets, e, entry)
	}
}

func TestReplayedSegmentIsStable(t *testing.T) {
	// Feeding the same 20-request segment twice (duplicate shipping) must
	// not blow up; scores may legitimately change, alerts stay boolean.
	dets := detectors(t)
	e := detector.NewEnricher(iprep.BuildFeed())
	base := time.Date(2018, 3, 12, 10, 0, 0, 0, time.UTC)
	for round := 0; round < 2; round++ {
		for i := 0; i < 20; i++ {
			entry := baseEntry(base.Add(time.Duration(i) * time.Second))
			feed(t, dets, e, entry)
		}
	}
}

func TestHostileFieldValues(t *testing.T) {
	dets := detectors(t)
	e := detector.NewEnricher(iprep.BuildFeed())
	base := time.Date(2018, 3, 12, 10, 0, 0, 0, time.UTC)

	hostile := []logfmt.Entry{
		func() logfmt.Entry {
			x := baseEntry(base)
			x.UserAgent = strings.Repeat("A", 64*1024) // giant UA
			return x
		}(),
		func() logfmt.Entry {
			x := baseEntry(base.Add(time.Second))
			x.UserAgent = "" // missing UA
			return x
		}(),
		func() logfmt.Entry {
			x := baseEntry(base.Add(2 * time.Second))
			x.Path = "/product/99999999999999999999" // overflowing id
			return x
		}(),
		func() logfmt.Entry {
			x := baseEntry(base.Add(3 * time.Second))
			x.Path = "/category/3?page=-7&page=2&page=x" // conflicting params
			return x
		}(),
		func() logfmt.Entry {
			x := baseEntry(base.Add(4 * time.Second))
			x.RemoteAddr = "999.999.999.999" // unparseable address
			return x
		}(),
		func() logfmt.Entry {
			x := baseEntry(base.Add(5 * time.Second))
			x.Path = "/" + strings.Repeat("a/", 4096) // deep path
			return x
		}(),
		func() logfmt.Entry {
			x := baseEntry(base.Add(6 * time.Second))
			x.Status = 599 // out-of-registry status
			x.Bytes = -1
			return x
		}(),
		func() logfmt.Entry {
			x := baseEntry(base.Add(7 * time.Second))
			x.Method = "PROPFIND" // unusual method
			x.Path = "/__verify"
			return x
		}(),
	}
	for i, entry := range hostile {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("hostile entry %d panicked: %v", i, r)
				}
			}()
			feed(t, dets, e, entry)
		}()
	}
}

func TestUAChurnDoesNotExplodeMemory(t *testing.T) {
	// An attacker sending a unique UA per request must not grow the
	// enricher cache unboundedly (it is capped).
	e := detector.NewEnricher(iprep.BuildFeed())
	base := time.Date(2018, 3, 12, 10, 0, 0, 0, time.UTC)
	for i := 0; i < 100_000; i++ {
		entry := baseEntry(base.Add(time.Duration(i) * time.Millisecond))
		entry.UserAgent = "bot-" + strings.Repeat("x", i%32) + string(rune('a'+i%26)) + itoa(i)
		_ = e.Enrich(entry)
	}
	// The cap is 1<<16 entries; reaching here without OOM plus a bounded
	// working set is the assertion (the cache is internal, so the test is
	// behavioural: time/allocation explosion would trip the test timeout).
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestManyClientsBoundedSessions(t *testing.T) {
	// 50k distinct client addresses in one burst: session stores must
	// stay bounded by eviction, not grow monotonically forever.
	arc, err := arcane.New(arcane.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := detector.NewEnricher(iprep.BuildFeed())
	base := time.Date(2018, 3, 12, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 50_000; i++ {
		entry := baseEntry(base.Add(time.Duration(i) * 100 * time.Millisecond))
		entry.RemoteAddr = "10." + itoa(i%200) + "." + itoa((i/200)%250) + "." + itoa(i%250)
		req := e.Enrich(entry)
		arc.Inspect(&req)
	}
	// 50k requests over ~83 minutes with a 30-minute idle timeout: the
	// store must have evicted old sessions.
	if got := arc.Sessions(); got >= 50_000 {
		t.Errorf("sessions never evicted: %d live", got)
	}
}

func TestCrossClientIsolation(t *testing.T) {
	// A screaming-hot scraper must not change the verdict for an
	// unrelated clean client interleaved with it.
	mk := func() (*sentinel.Detector, *arcane.Detector, *detector.Enricher) {
		sen, err := sentinel.New(sentinel.Config{})
		if err != nil {
			t.Fatal(err)
		}
		arc, err := arcane.New(arcane.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return sen, arc, detector.NewEnricher(iprep.BuildFeed())
	}
	base := time.Date(2018, 3, 12, 10, 0, 0, 0, time.UTC)

	cleanVerdicts := func(withNoise bool) []bool {
		sen, arc, e := mk()
		var out []bool
		for i := 0; i < 40; i++ {
			if withNoise {
				noise := baseEntry(base.Add(time.Duration(i)*time.Second + 100*time.Millisecond))
				noise.RemoteAddr = "192.168.96.9" // blocklisted scraper
				noise.UserAgent = "python-requests/2.18.4"
				noise.Path = "/api/price/" + itoa(i)
				req := e.Enrich(noise)
				sen.Inspect(&req)
				arc.Inspect(&req)
			}
			clean := baseEntry(base.Add(time.Duration(i) * time.Second))
			clean.RemoteAddr = "10.0.7.7"
			clean.Path = "/product/" + itoa(500+i*13%1000)
			req := e.Enrich(clean)
			v1 := sen.Inspect(&req)
			v2 := arc.Inspect(&req)
			out = append(out, v1.Alert || v2.Alert)
		}
		return out
	}

	quiet := cleanVerdicts(false)
	noisy := cleanVerdicts(true)
	for i := range quiet {
		if quiet[i] != noisy[i] {
			t.Fatalf("clean client's verdict at request %d changed because of an unrelated scraper", i)
		}
	}
}
