package arcane

import (
	"fmt"
	"sort"

	"divscrape/internal/detector"
	"divscrape/internal/sessions"
	"divscrape/internal/statecodec"
	"divscrape/internal/uaparse"
)

// tagArcane opens an arcane state block in a snapshot.
const tagArcane uint16 = 0x4A01

var _ detector.ShardedSnapshotter = (*Detector)(nil)

// snapshotSession and restoreSession are the sessions value hooks; they
// must stay symmetric field for field. The product-ID set is written in
// ascending order so equal sessions always serialise to equal bytes.
func snapshotSession(w *statecodec.Writer, st *session) {
	w.Uint64(st.count)
	w.Uint64(st.pages)
	w.Uint64(st.assets)
	w.Uint64(st.apiCalls)
	w.Uint64(st.notFound)
	w.Uint64(st.robotsViol)
	w.Uint64(st.refererMiss)
	w.Uint64(st.refererEligible)
	ids := make([]int, 0, len(st.products))
	for id := range st.products {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	w.Uint32(uint32(len(ids)))
	for _, id := range ids {
		w.Int(id)
	}
	w.Int(st.lastProduct)
	w.Uint64(st.seqRuns)
	w.Int(st.lastCategory)
	w.Int(st.lastPage)
	w.Uint64(st.pageRuns)
	w.Time(st.lastTime)
	st.interarrival.SnapshotInto(w)
	st.rate.SnapshotInto(w)
	w.Uint8(uint8(st.claims))
}

func restoreSession(r *statecodec.Reader, st *session) error {
	st.count = r.Uint64()
	st.pages = r.Uint64()
	st.assets = r.Uint64()
	st.apiCalls = r.Uint64()
	st.notFound = r.Uint64()
	st.robotsViol = r.Uint64()
	st.refererMiss = r.Uint64()
	st.refererEligible = r.Uint64()
	n := r.Count(8)
	for i := 0; i < n; i++ {
		st.products[r.Int()] = struct{}{}
	}
	st.lastProduct = r.Int()
	st.seqRuns = r.Uint64()
	st.lastCategory = r.Int()
	st.lastPage = r.Int()
	st.pageRuns = r.Uint64()
	st.lastTime = r.Time()
	if err := st.interarrival.RestoreFrom(r); err != nil {
		return err
	}
	if err := st.rate.RestoreFrom(r); err != nil {
		return err
	}
	claims := r.Uint8()
	if r.Err() != nil {
		return r.Err()
	}
	if claims > uint8(uaparse.ClassTool) {
		return fmt.Errorf("%w: UA class %d", statecodec.ErrCorrupt, claims)
	}
	st.claims = uaparse.Class(claims)
	return nil
}

// SnapshotInto implements detector.Snapshotter.
func (d *Detector) SnapshotInto(w *statecodec.Writer) {
	if err := d.SnapshotShardsInto(w, []detector.Detector{d}); err != nil {
		w.Fail(err)
	}
}

// RestoreFrom implements detector.Snapshotter.
func (d *Detector) RestoreFrom(r *statecodec.Reader) error {
	return d.RestoreShards(r, []detector.Detector{d}, func(uint32) int { return 0 })
}

// SnapshotShardsInto implements detector.ShardedSnapshotter.
func (d *Detector) SnapshotShardsInto(w *statecodec.Writer, shards []detector.Detector) error {
	stores, err := arcaneStores(shards)
	if err != nil {
		return err
	}
	w.Tag(tagArcane)
	sessions.SnapshotMerged(w, stores)
	return w.Err()
}

// RestoreShards implements detector.ShardedSnapshotter. Sessions are
// keyed by (IP, User-Agent) but partitioned by IP alone — the same rule
// the sharded pipeline and httpguard route requests by — so every
// session of one client lands on that client's shard.
func (d *Detector) RestoreShards(r *statecodec.Reader, shards []detector.Detector, part func(ip uint32) int) error {
	stores, err := arcaneStores(shards)
	if err != nil {
		return err
	}
	if err := r.Expect(tagArcane); err != nil {
		return err
	}
	return sessions.RestorePartitioned(r, stores, func(k sessions.Key) int { return part(k.IP) })
}

// arcaneStores asserts a shard slice down to the session stores.
func arcaneStores(shards []detector.Detector) ([]*sessions.Store[session], error) {
	stores := make([]*sessions.Store[session], len(shards))
	for i, s := range shards {
		ad, ok := s.(*Detector)
		if !ok {
			return nil, fmt.Errorf("arcane: shard %d is %T, not *arcane.Detector", i, s)
		}
		stores[i] = ad.store
	}
	return stores, nil
}
