// Package arcane implements a behavioural, in-house-style scraping detector
// playing the role of the Amadeus tool of the same name in the DSN 2018
// paper. Where the commercial-style detector (internal/sentinel) judges
// requests by what the client *claims to be* — signatures, reputation,
// challenge tokens — this detector judges sessions by what the client
// *does*: inter-arrival regularity, catalogue coverage, sequential ID
// enumeration, pagination sweeps, asset starvation, referer discipline and
// robots.txt violations, composed into a streaming anomaly score.
//
// It needs a handful of requests per session to accumulate behavioural
// evidence (the warm-up), so it is strong against clean-fingerprint
// automation that the signature detector misses, and weak in exactly the
// places the signature detector is strong — the structural source of the
// alerting diversity the paper measures.
package arcane

import (
	"fmt"
	"time"

	"divscrape/internal/anomaly"
	"divscrape/internal/detector"
	"divscrape/internal/iprep"
	"divscrape/internal/sessions"
	"divscrape/internal/sitemodel"
	"divscrape/internal/stats"
	"divscrape/internal/uaparse"
)

// Feature names used in verdict explanations.
const (
	featRegularity  = "timing-regularity"
	featRate        = "session-rate"
	featVolume      = "session-volume"
	featEnumeration = "id-enumeration"
	featCoverage    = "catalogue-coverage"
	featPagination  = "pagination-sweep"
	featNoAssets    = "asset-starvation"
	featNoReferer   = "missing-referers"
	featRobots      = "robots-violations"
	featNotFound    = "not-found-probing"
)

// featIndex fixes the slot layout of the flat feature vector reused across
// requests; the composite scorer is declared in the same order, so slot i
// here is feature i there.
var featIndex = detector.NewFeatureIndex(
	featRegularity, featRate, featVolume, featEnumeration, featCoverage,
	featPagination, featNoAssets, featNoReferer, featRobots, featNotFound,
)

// Vector slots, resolved once at init.
var (
	idxRegularity  = featIndex.Index(featRegularity)
	idxRate        = featIndex.Index(featRate)
	idxVolume      = featIndex.Index(featVolume)
	idxEnumeration = featIndex.Index(featEnumeration)
	idxCoverage    = featIndex.Index(featCoverage)
	idxPagination  = featIndex.Index(featPagination)
	idxNoAssets    = featIndex.Index(featNoAssets)
	idxNoReferer   = featIndex.Index(featNoReferer)
	idxRobots      = featIndex.Index(featRobots)
	idxNotFound    = featIndex.Index(featNotFound)
)

// Config tunes the detector. Zero values select the documented defaults.
type Config struct {
	// AlertThreshold is the composite score above which a request alerts.
	// Default 0.30.
	AlertThreshold float64
	// WarmupRequests is the number of requests a session must accumulate
	// before the detector will score it; behavioural evidence below this
	// is considered noise. Default 6.
	WarmupRequests int
	// IdleTimeout ends a session after this much inactivity. Default 30m
	// (the web-analytics convention).
	IdleTimeout time.Duration
	// RateKnee is the sustained per-session request rate (req/s) at which
	// the rate feature reaches half strength. Default 0.9.
	RateKnee float64
	// CoverageKnee is the distinct-product count at half strength; humans
	// rarely view more than a couple of dozen products per session.
	// Default 60.
	CoverageKnee float64
	// VolumeKnee is the session request count at half strength.
	// Default 400.
	VolumeKnee float64
	// RegularityCV is the inter-arrival coefficient of variation below
	// which timing counts as machine-regular. Default 0.35.
	RegularityCV float64
	// InspectAuthUsers, when true, also inspects authenticated traffic.
	InspectAuthUsers bool
}

// DefaultConfig returns the tuned defaults used by the evaluation.
func DefaultConfig() Config {
	return Config{
		AlertThreshold: 0.30,
		WarmupRequests: 6,
		IdleTimeout:    30 * time.Minute,
		RateKnee:       0.9,
		CoverageKnee:   60,
		VolumeKnee:     400,
		RegularityCV:   0.35,
	}
}

func (c *Config) applyDefaults() {
	d := DefaultConfig()
	if c.AlertThreshold <= 0 {
		c.AlertThreshold = d.AlertThreshold
	}
	if c.WarmupRequests <= 0 {
		c.WarmupRequests = d.WarmupRequests
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = d.IdleTimeout
	}
	if c.RateKnee <= 0 {
		c.RateKnee = d.RateKnee
	}
	if c.CoverageKnee <= 0 {
		c.CoverageKnee = d.CoverageKnee
	}
	if c.VolumeKnee <= 0 {
		c.VolumeKnee = d.VolumeKnee
	}
	if c.RegularityCV <= 0 {
		c.RegularityCV = d.RegularityCV
	}
}

// session is the per-(IP, UA) behavioural memory.
type session struct {
	count           uint64
	pages           uint64
	assets          uint64
	apiCalls        uint64
	notFound        uint64
	robotsViol      uint64
	refererMiss     uint64
	refererEligible uint64
	products        map[int]struct{}
	lastProduct     int
	seqRuns         uint64 // consecutive-ID product/price accesses
	lastCategory    int
	lastPage        int
	pageRuns        uint64 // consecutive pagination steps
	lastTime        time.Time
	interarrival    stats.Welford
	rate            *stats.DecayRate
	claims          uaparse.Class
}

// Detector is the behavioural detector. Not safe for concurrent use.
type Detector struct {
	cfg    Config
	scorer *anomaly.Composite
	store  *sessions.Store[session]

	// Per-request scratch, reused to keep Inspect allocation-free.
	vec      []float64
	contribs []anomaly.Contribution
	// vecValid marks vec as holding the last request's features; requests
	// short-circuited before scoring (auth users, verified crawlers,
	// warmup) leave it false so the provenance plane never snapshots a
	// stale vector.
	vecValid bool
}

var (
	_ detector.Detector  = (*Detector)(nil)
	_ detector.Explainer = (*Detector)(nil)
)

// New builds a detector with cfg (zero fields take defaults).
func New(cfg Config) (*Detector, error) {
	cfg.applyDefaults()
	scorer, err := anomaly.NewComposite([]anomaly.Feature{
		{Name: featRegularity, Weight: 2.5, Scale: 1.0},
		{Name: featRate, Weight: 2.0, Scale: 1.0},
		{Name: featVolume, Weight: 1.5, Scale: 1.0},
		{Name: featEnumeration, Weight: 3.0, Scale: 0.5},
		{Name: featCoverage, Weight: 2.5, Scale: 1.0},
		{Name: featPagination, Weight: 2.0, Scale: 0.6},
		{Name: featNoAssets, Weight: 1.5, Scale: 0.7},
		{Name: featNoReferer, Weight: 1.0, Scale: 0.8},
		{Name: featRobots, Weight: 2.0, Scale: 0.5},
		{Name: featNotFound, Weight: 1.5, Scale: 0.6},
	})
	if err != nil {
		return nil, fmt.Errorf("arcane: build scorer: %w", err)
	}
	d := &Detector{
		cfg:      cfg,
		scorer:   scorer,
		vec:      featIndex.NewVector(),
		contribs: make([]anomaly.Contribution, 0, featIndex.Len()),
	}
	if d.store, err = newStore(cfg); err != nil {
		return nil, fmt.Errorf("arcane: build store: %w", err)
	}
	return d, nil
}

func newStore(cfg Config) (*sessions.Store[session], error) {
	return sessions.NewStore(sessions.Config[session]{
		IdleTimeout: cfg.IdleTimeout,
		New: func(time.Time) *session {
			return &session{
				products:     make(map[int]struct{}, 16),
				lastProduct:  -1,
				lastCategory: -1,
				lastPage:     -1,
				rate:         stats.NewDecayRate(2 * time.Minute),
			}
		},
		// Recycle resets an ended session in place — the product map keeps
		// its buckets, the decay-rate tracker its configuration — so
		// session churn does not allocate in steady state.
		Recycle: func(st *session) {
			products, rate := st.products, st.rate
			clear(products)
			rate.Reset()
			*st = session{
				products:     products,
				lastProduct:  -1,
				lastCategory: -1,
				lastPage:     -1,
				rate:         rate,
			}
		},
		Snapshot: snapshotSession,
		Restore:  restoreSession,
	})
}

// Name implements detector.Detector.
func (d *Detector) Name() string { return "arcane" }

// Reset implements detector.Detector.
func (d *Detector) Reset() {
	d.store.Reset()
}

// Sessions reports the number of live sessions (for diagnostics).
func (d *Detector) Sessions() int { return d.store.Len() }

// FeatureNames implements detector.Explainer: the feature vector's slot
// names, in order. The returned slice is immutable.
func (d *Detector) FeatureNames() []string { return featIndex.Names() }

// LastFeatures implements detector.Explainer: the vector behind the most
// recent InspectInto, aliasing the detector's reusable scratch. ok is
// false when that request short-circuited before scoring.
func (d *Detector) LastFeatures() ([]float64, bool) { return d.vec, d.vecValid }

// EvictBefore implements detector.Evictable: it proactively drops
// sessions untouched since cutoff. Verdict-neutral whenever cutoff trails
// stream time by at least Config.IdleTimeout.
func (d *Detector) EvictBefore(cutoff time.Time) int {
	return d.store.EvictBefore(cutoff)
}

// Inspect implements detector.Detector.
func (d *Detector) Inspect(req *detector.Request) detector.Verdict {
	var v detector.Verdict
	d.InspectInto(req, &v)
	return v
}

// InspectInto implements detector.Detector. It overwrites every field of
// *out and records reasons as interned feature-name constants, so the
// steady-state decision path performs no allocations.
func (d *Detector) InspectInto(req *detector.Request, out *detector.Verdict) {
	*out = detector.Verdict{}
	d.vecValid = false
	if !d.cfg.InspectAuthUsers && req.Entry.AuthUser != "" && req.Entry.AuthUser != "-" {
		return
	}
	// Verified search-engine crawlers are whitelisted: the operator wants
	// to be indexed, so behavioural similarity to scraping is sanctioned.
	// (Spoofed crawler claims from unverified ranges are still inspected.)
	if req.UA.Class == uaparse.ClassSearchBot && req.IPCat == iprep.SearchEngine {
		return
	}

	now := req.Entry.Time
	st, fresh := d.store.Touch(sessions.KeyFor(req.IP, req.Entry.UserAgent), now)
	d.observe(st, req, now, fresh)

	if st.count < uint64(d.cfg.WarmupRequests) {
		return
	}

	d.fillFeatures(st, now)
	d.vecValid = true
	score, contribs := d.scorer.ScoreVec(d.vec, d.contribs)
	out.Score = score
	if score >= d.cfg.AlertThreshold {
		out.Alert = true
		for i := range contribs {
			out.Reasons.Append(contribs[i].Name)
		}
	}
}

// observe folds one request into the session state.
func (d *Detector) observe(st *session, req *detector.Request, now time.Time, fresh bool) {
	if !fresh {
		if dt := now.Sub(st.lastTime).Seconds(); dt >= 0 {
			st.interarrival.Add(dt)
		}
	}
	st.lastTime = now
	st.count++
	st.rate.Observe(now)
	st.claims = req.UA.Class

	info := sitemodel.ClassifyPath(req.Entry.Path)
	switch {
	case info.Kind == sitemodel.KindStatic:
		st.assets++
	case info.Kind.IsPage():
		st.pages++
	case info.Kind == sitemodel.KindPrice:
		st.apiCalls++
	}

	if req.Entry.Status == 404 {
		st.notFound++
	}
	if sitemodel.DisallowedByRobots(req.Entry.PathOnly()) {
		st.robotsViol++
	}
	// Referer discipline applies to in-site page navigation: browsers
	// carry a referer once they are past the landing page.
	if info.Kind.IsPage() && st.pages > 1 {
		st.refererEligible++
		if req.Entry.Referer == "" || req.Entry.Referer == "-" {
			st.refererMiss++
		}
	}
	// Sequential-ID enumeration across product pages and the price API.
	if id := info.ProductID; id >= 0 {
		st.products[id] = struct{}{}
		if st.lastProduct >= 0 && (id == st.lastProduct+1 || id == st.lastProduct+2) {
			st.seqRuns++
		}
		st.lastProduct = id
	}
	// Pagination sweeps: walking category pages in order.
	if info.Kind == sitemodel.KindCategory {
		if info.Category == st.lastCategory && info.Page == st.lastPage+1 {
			st.pageRuns++
		}
		st.lastCategory, st.lastPage = info.Category, info.Page
	}
}

// fillFeatures derives the flat feature vector from session state into the
// detector's reusable scratch vector.
func (d *Detector) fillFeatures(st *session, now time.Time) {
	vec := d.vec
	for i := range vec {
		vec[i] = 0
	}

	// Machine-regular timing: CV below the knee scores proportionally to
	// how far below it sits, but only once enough gaps are recorded.
	if st.interarrival.N() >= 5 {
		cv := st.interarrival.CV()
		if cv < d.cfg.RegularityCV {
			vec[idxRegularity] = (d.cfg.RegularityCV - cv) / d.cfg.RegularityCV * 2
		}
	}
	vec[idxRate] = st.rate.Rate(now) / d.cfg.RateKnee
	vec[idxVolume] = float64(st.count) / d.cfg.VolumeKnee
	if contentReqs := st.pages + st.apiCalls; contentReqs > 0 {
		vec[idxEnumeration] = float64(st.seqRuns) / float64(contentReqs) * 2
		vec[idxNotFound] = float64(st.notFound) / float64(contentReqs) * 2
	}
	vec[idxCoverage] = float64(len(st.products)) / d.cfg.CoverageKnee
	if st.pages > 0 {
		vec[idxPagination] = float64(st.pageRuns) / float64(st.pages) * 2
	}
	// Asset starvation only indicts clients claiming to be browsers:
	// fetching many pages but none of the assets a real browser would.
	if st.claims == uaparse.ClassBrowser && st.pages >= 5 {
		assetPerPage := float64(st.assets) / float64(st.pages)
		if assetPerPage < 0.5 {
			vec[idxNoAssets] = 1 - 2*assetPerPage
		}
	}
	if st.refererEligible >= 4 {
		missRatio := float64(st.refererMiss) / float64(st.refererEligible)
		if missRatio > 0.5 {
			vec[idxNoReferer] = (missRatio - 0.5) * 2
		}
	}
	if st.count > 0 {
		vec[idxRobots] = float64(st.robotsViol) / float64(st.count) * 1.5
	}
}

// SessionsSince streams the keys and last-activity stamps of sessions
// active at or after since, newest first — the session digests the
// cluster plane ships so peers can gauge replica freshness. The walk
// rides the store's recency order and stops at the first stale session.
func (d *Detector) SessionsSince(since time.Time, fn func(key sessions.Key, lastSeen time.Time)) {
	d.store.RangeNewest(func(k sessions.Key, last time.Time) bool {
		if last.Before(since) {
			return false
		}
		fn(k, last)
		return true
	})
}
