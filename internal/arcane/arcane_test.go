package arcane

import (
	"strconv"
	"testing"
	"time"

	"divscrape/internal/detector"
	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
	"divscrape/internal/sitemodel"
	"divscrape/internal/uaparse"
)

var base = time.Date(2018, 3, 12, 10, 0, 0, 0, time.UTC)

const cleanChrome = "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36"

func mkReq(t *testing.T, ip, ua, path, referer string, status int, at time.Time) *detector.Request {
	t.Helper()
	addr, err := iprep.ParseIPv4(ip)
	if err != nil {
		t.Fatal(err)
	}
	cat, _ := iprep.BuildFeed().Lookup(addr)
	return &detector.Request{
		Entry: logfmt.Entry{
			RemoteAddr: ip, Identity: "-", AuthUser: "-",
			Time: at, Method: "GET", Path: path, Proto: "HTTP/1.1",
			Status: status, Bytes: 1000, Referer: referer, UserAgent: ua,
		},
		UA:    uaparse.Parse(ua),
		IP:    addr,
		IPCat: cat,
	}
}

func newDet(t *testing.T) *Detector {
	t.Helper()
	d, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSequentialEnumerationCaughtAfterWarmup(t *testing.T) {
	d := newDet(t)
	now := base
	warmup := DefaultConfig().WarmupRequests
	var firstAlert int = -1
	for i := 0; i < 60; i++ {
		now = now.Add(time.Second) // machine-steady 1/s
		v := d.Inspect(mkReq(t, "172.16.0.8", "python-requests/2.18.4",
			sitemodel.PricePath(i), "-", 200, now))
		if v.Alert && firstAlert < 0 {
			firstAlert = i
		}
		if i < warmup-1 && v.Alert {
			t.Fatalf("alerted during warm-up at request %d", i)
		}
	}
	if firstAlert < 0 {
		t.Fatal("sequential price enumeration never alerted")
	}
	if firstAlert > 3*warmup {
		t.Errorf("first alert at request %d, want shortly after warm-up (%d)", firstAlert, warmup)
	}
}

func TestHumanBrowsingStaysQuiet(t *testing.T) {
	d := newDet(t)
	now := base
	// A plausible human session: irregular think times, varied pages,
	// assets, referers.
	paths := []struct{ path, ref string }{
		{sitemodel.HomePath, "-"},
		{"/static/app.css", "-"},
		{"/static/app.js", "-"},
		{sitemodel.CategoryPath(3, 0), sitemodel.HomePath},
		{sitemodel.ProductPath(756), sitemodel.CategoryPath(3, 0)},
		{"/static/img/p756.jpg", "-"},
		{sitemodel.SearchPath("hotel deals"), sitemodel.ProductPath(756)},
		{sitemodel.ProductPath(310), "/search"},
		{"/static/img/p310.jpg", "-"},
		{sitemodel.CartPath, sitemodel.ProductPath(310)},
		{sitemodel.CheckoutPath, sitemodel.CartPath},
	}
	gaps := []time.Duration{
		0, 200 * time.Millisecond, 150 * time.Millisecond, 9 * time.Second,
		21 * time.Second, 300 * time.Millisecond, 5 * time.Second,
		47 * time.Second, 250 * time.Millisecond, 11 * time.Second, 80 * time.Second,
	}
	for i, p := range paths {
		now = now.Add(gaps[i])
		v := d.Inspect(mkReq(t, "10.0.0.5", cleanChrome, p.path, p.ref, 200, now))
		if v.Alert {
			t.Fatalf("human page %d (%s) alerted: score %g reasons %v", i, p.path, v.Score, v.Reasons.Strings())
		}
	}
}

func TestHeadlessCrawlCaught(t *testing.T) {
	d := newDet(t)
	now := base
	// Clean UA, referers, assets — but huge sequential coverage with
	// near-constant pacing: the behavioural signature.
	alerts := 0
	reqs := 0
	for page := 0; page < 4; page++ {
		listing := sitemodel.CategoryPath(0, page)
		now = now.Add(1200 * time.Millisecond)
		d.Inspect(mkReq(t, "172.22.0.5", cleanChrome, listing, "-", 200, now))
		reqs++
		for i := 0; i < 25; i++ {
			now = now.Add(1300 * time.Millisecond)
			pid := page*25 + i
			v := d.Inspect(mkReq(t, "172.22.0.5", cleanChrome,
				sitemodel.ProductPath(pid), listing, 200, now))
			reqs++
			if v.Alert {
				alerts++
			}
		}
	}
	if alerts == 0 {
		t.Fatal("headless catalogue sweep never alerted")
	}
	if alerts < reqs/3 {
		t.Errorf("only %d of %d sweep requests alerted", alerts, reqs)
	}
}

func TestVerifiedSearchBotWhitelisted(t *testing.T) {
	d := newDet(t)
	now := base
	googlebot := "Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)"
	verified := iprep.FormatIPv4(iprep.SearchEngineRanges[0].Nth(3))
	for i := 0; i < 100; i++ {
		now = now.Add(5 * time.Second)
		v := d.Inspect(mkReq(t, verified, googlebot, sitemodel.ProductPath(i), "-", 200, now))
		if v.Alert {
			t.Fatalf("verified crawler alerted at request %d", i)
		}
	}

	// The same crawl from unverified space is inspected and eventually
	// convicted (sequential coverage).
	d2 := newDet(t)
	now = base
	alerted := false
	for i := 0; i < 300; i++ {
		now = now.Add(2 * time.Second)
		if v := d2.Inspect(mkReq(t, "10.0.0.77", googlebot, sitemodel.ProductPath(i), "-", 200, now)); v.Alert {
			alerted = true
			break
		}
	}
	if !alerted {
		t.Error("unverified crawler claim never inspected")
	}
}

func TestAuthenticatedSkipped(t *testing.T) {
	d := newDet(t)
	now := base
	for i := 0; i < 50; i++ {
		now = now.Add(time.Second)
		req := mkReq(t, "10.112.0.4", "Java/1.8.0_151", sitemodel.PricePath(i), "-", 200, now)
		req.Entry.AuthUser = "ota-partner-3"
		if v := d.Inspect(req); v.Alert || v.Score != 0 {
			t.Fatalf("authenticated request %d scored %g", i, v.Score)
		}
	}
}

func TestSessionsSplitByUA(t *testing.T) {
	d := newDet(t)
	now := base
	// Two agents behind one NAT address: each stream is its own session;
	// neither crosses the warm-up on its own.
	for i := 0; i < 4; i++ {
		now = now.Add(10 * time.Second)
		ua := cleanChrome
		if i%2 == 1 {
			ua = "Mozilla/5.0 (X11; Linux x86_64; rv:58.0) Gecko/20100101 Firefox/58.0"
		}
		v := d.Inspect(mkReq(t, "10.0.0.8", ua, sitemodel.ProductPath(i), "-", 200, now))
		if v.Score != 0 {
			t.Fatalf("request %d scored %g before per-session warm-up", i, v.Score)
		}
	}
	if d.Sessions() != 2 {
		t.Errorf("Sessions = %d, want 2", d.Sessions())
	}
}

func TestIdleSessionRestartsWarmup(t *testing.T) {
	d := newDet(t)
	now := base
	for i := 0; i < 30; i++ {
		now = now.Add(time.Second)
		d.Inspect(mkReq(t, "172.16.0.8", "curl/7.58.0", sitemodel.PricePath(i), "-", 200, now))
	}
	// After an hour idle, the session expired; the first request of the
	// new session is back inside warm-up.
	now = now.Add(time.Hour)
	v := d.Inspect(mkReq(t, "172.16.0.8", "curl/7.58.0", sitemodel.PricePath(99), "-", 200, now))
	if v.Score != 0 {
		t.Errorf("request after idle expiry scored %g, want 0 (fresh warm-up)", v.Score)
	}
}

func TestNotFoundProbingSignal(t *testing.T) {
	run := func(status int) float64 {
		d := newDet(t)
		now := base
		var last float64
		for i := 0; i < 40; i++ {
			now = now.Add(2 * time.Second)
			// Random-ish product ids so the enumeration feature stays out
			// of the comparison; only the status differs between runs.
			pid := (i*37 + 11) % 9999
			v := d.Inspect(mkReq(t, "10.0.0.66", cleanChrome,
				sitemodel.ProductPath(pid), "-", status, now))
			last = v.Score
		}
		return last
	}
	if miss, hit := run(404), run(200); miss <= hit {
		t.Errorf("404-probing score %g not above 200 score %g", miss, hit)
	}
}

func TestResetClearsSessions(t *testing.T) {
	d := newDet(t)
	now := base
	for i := 0; i < 20; i++ {
		now = now.Add(time.Second)
		d.Inspect(mkReq(t, "172.16.0.8", "curl/7.58.0", sitemodel.PricePath(i), "-", 200, now))
	}
	if d.Sessions() == 0 {
		t.Fatal("expected live sessions")
	}
	d.Reset()
	if d.Sessions() != 0 {
		t.Error("Reset left sessions")
	}
}

func BenchmarkInspect(b *testing.B) {
	d, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	addr, _ := iprep.ParseIPv4("172.16.0.9")
	ua := uaparse.Parse("python-requests/2.18.4")
	now := base
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Second)
		req := &detector.Request{
			Entry: logfmt.Entry{
				RemoteAddr: "172.16.0.9", Time: now,
				Method: "GET", Path: "/api/price/" + strconv.Itoa(i%10000),
				Proto:  "HTTP/1.1",
				Status: 200, Bytes: 400, Referer: "-",
				UserAgent: "python-requests/2.18.4",
			},
			UA: ua, IP: addr, IPCat: iprep.Datacenter,
		}
		d.Inspect(req)
	}
}
