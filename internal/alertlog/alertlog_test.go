package alertlog

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"divscrape/internal/detector"
)

func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, nil); err == nil {
		t.Error("no detectors accepted")
	}
	if _, err := NewWriter(&buf, []string{"a,b"}); err == nil {
		t.Error("comma in name accepted")
	}
	if _, err := NewWriter(&buf, []string{""}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, []string{"sentinel", "arcane"})
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]detector.Verdict{
		{{Alert: true, Score: 0.432}, {Alert: false, Score: 0.1}},
		{{Alert: false, Score: 0}, {Alert: true, Score: 0.999}},
		{{Alert: true, Score: 1}, {Alert: true, Score: 0.5}},
	}
	for _, row := range rows {
		if err := w.Write(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Errorf("Count = %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if names := r.Detectors(); len(names) != 2 || names[0] != "sentinel" || names[1] != "arcane" {
		t.Errorf("Detectors = %v", names)
	}
	for i, want := range rows {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if rec.Seq != uint64(i) {
			t.Errorf("row %d seq = %d", i, rec.Seq)
		}
		for j := range want {
			if rec.Verdicts[j].Alert != want[j].Alert {
				t.Errorf("row %d verdict %d alert mismatch", i, j)
			}
			if math.Abs(rec.Verdicts[j].Score-want[j].Score) > 0.0005 {
				t.Errorf("row %d verdict %d score %g vs %g", i, j,
					rec.Verdicts[j].Score, want[j].Score)
			}
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestWriterArityCheck(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, []string{"one"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write([]detector.Verdict{{}, {}}); err == nil {
		t.Error("wrong verdict arity accepted")
	}
}

func TestReaderErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{"empty", ""},
		{"bad header", "nope\n"},
		{"odd header", "seq,a_alert\n"},
		{"mismatched header pair", "seq,a_alert,b_score\n"},
		{"short row", "seq,a_alert,a_score\n0,1\n"},
		{"bad seq", "seq,a_alert,a_score\nx,1,0.5\n"},
		{"out of order", "seq,a_alert,a_score\n1,1,0.5\n"},
		{"bad flag", "seq,a_alert,a_score\n0,2,0.5\n"},
		{"bad score", "seq,a_alert,a_score\n0,1,zzz\n"},
		{"negative score", "seq,a_alert,a_score\n0,1,-0.5\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r, err := NewReader(strings.NewReader(tt.give))
			if err != nil {
				return // header-level rejection is fine
			}
			if err := r.ForEach(func(Record) error { return nil }); err == nil {
				t.Error("malformed input accepted")
			}
		})
	}
}

func TestForEachEarlyStop(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, []string{"d"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Write([]detector.Verdict{{Score: 0.5}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("stop")
	n := 0
	err = r.ForEach(func(Record) error {
		n++
		if n == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || n != 2 {
		t.Errorf("early stop: n=%d err=%v", n, err)
	}
}
