// Package alertlog persists per-request verdict streams as CSV sidecars
// aligned with the access log, so detector output can be archived, diffed
// across detector versions, and re-analysed without re-running detection.
// The format is one row per request:
//
//	seq,detector1_alert,detector1_score,detector2_alert,detector2_score,...
//
// with a header row naming the detectors. Scores are recorded at three
// decimals — enough to re-threshold offline without exploding file size.
package alertlog

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"divscrape/internal/detector"
)

// Writer streams verdict rows.
type Writer struct {
	bw        *bufio.Writer
	detectors []string
	seq       uint64
}

// NewWriter emits the header for the given detector names immediately.
func NewWriter(w io.Writer, detectors []string) (*Writer, error) {
	if len(detectors) == 0 {
		return nil, fmt.Errorf("alertlog: need at least one detector name")
	}
	names := make([]string, len(detectors))
	copy(names, detectors)
	for i, name := range names {
		if name == "" || strings.ContainsAny(name, ",\n") {
			return nil, fmt.Errorf("alertlog: invalid detector name %q", name)
		}
		names[i] = name
	}
	bw := bufio.NewWriterSize(w, 128*1024)
	header := "seq"
	for _, name := range names {
		header += "," + name + "_alert," + name + "_score"
	}
	if _, err := bw.WriteString(header + "\n"); err != nil {
		return nil, fmt.Errorf("alertlog: write header: %w", err)
	}
	return &Writer{bw: bw, detectors: names}, nil
}

// Write appends one row numbered with the writer's running counter. The
// verdict slice must align with the detector names given at construction.
func (w *Writer) Write(verdicts []detector.Verdict) error {
	return w.WriteAt(w.seq, verdicts)
}

// WriteAt appends one row with an explicit sequence number — the form
// checkpoint-resume replays use, where the stream position continues
// from the restored state rather than from zero. The writer's counter is
// realigned to seq+1, so Write and WriteAt interleave consistently.
func (w *Writer) WriteAt(seq uint64, verdicts []detector.Verdict) error {
	if len(verdicts) != len(w.detectors) {
		return fmt.Errorf("alertlog: got %d verdicts, want %d", len(verdicts), len(w.detectors))
	}
	w.seq = seq
	var buf [96]byte
	row := strconv.AppendUint(buf[:0], w.seq, 10)
	for _, v := range verdicts {
		row = append(row, ',')
		if v.Alert {
			row = append(row, '1')
		} else {
			row = append(row, '0')
		}
		row = append(row, ',')
		row = strconv.AppendFloat(row, v.Score, 'f', 3, 64)
	}
	row = append(row, '\n')
	if _, err := w.bw.Write(row); err != nil {
		return fmt.Errorf("alertlog: write row: %w", err)
	}
	w.seq++
	return nil
}

// Count reports rows written.
func (w *Writer) Count() uint64 { return w.seq }

// Flush drains buffered rows.
func (w *Writer) Flush() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("alertlog: flush: %w", err)
	}
	return nil
}

// Record is one parsed verdict row.
type Record struct {
	// Seq is the request's position in the stream.
	Seq uint64
	// Verdicts aligns with the file's detector names.
	Verdicts []detector.Verdict
}

// Reader streams rows back.
type Reader struct {
	sc        *bufio.Scanner
	detectors []string
	line      int
	next      uint64
}

// NewReader parses the header and prepares to stream rows.
func NewReader(r io.Reader) (*Reader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("alertlog: read header: %w", err)
		}
		return nil, fmt.Errorf("alertlog: empty input")
	}
	fields := strings.Split(sc.Text(), ",")
	if len(fields) < 3 || fields[0] != "seq" || (len(fields)-1)%2 != 0 {
		return nil, fmt.Errorf("alertlog: malformed header %q", sc.Text())
	}
	var names []string
	for i := 1; i < len(fields); i += 2 {
		name, ok := strings.CutSuffix(fields[i], "_alert")
		if !ok || fields[i+1] != name+"_score" {
			return nil, fmt.Errorf("alertlog: malformed header columns %q/%q", fields[i], fields[i+1])
		}
		names = append(names, name)
	}
	return &Reader{sc: sc, detectors: names, line: 1}, nil
}

// Detectors returns the detector names from the header.
func (r *Reader) Detectors() []string {
	out := make([]string, len(r.detectors))
	copy(out, r.detectors)
	return out
}

// Next returns the next row, or io.EOF at end of input.
func (r *Reader) Next() (Record, error) {
	for r.sc.Scan() {
		r.line++
		text := r.sc.Text()
		if text == "" {
			continue
		}
		rec, err := r.parseRow(text)
		if err != nil {
			return Record{}, fmt.Errorf("alertlog: line %d: %w", r.line, err)
		}
		return rec, nil
	}
	if err := r.sc.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

func (r *Reader) parseRow(text string) (Record, error) {
	fields := strings.Split(text, ",")
	if len(fields) != 1+2*len(r.detectors) {
		return Record{}, fmt.Errorf("want %d fields, got %d", 1+2*len(r.detectors), len(fields))
	}
	seq, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad seq %q", fields[0])
	}
	if seq != r.next {
		return Record{}, fmt.Errorf("seq %d out of order (want %d)", seq, r.next)
	}
	r.next++
	rec := Record{Seq: seq, Verdicts: make([]detector.Verdict, len(r.detectors))}
	for i := range r.detectors {
		alertField := fields[1+2*i]
		scoreField := fields[2+2*i]
		switch alertField {
		case "0":
		case "1":
			rec.Verdicts[i].Alert = true
		default:
			return Record{}, fmt.Errorf("bad alert flag %q", alertField)
		}
		score, err := strconv.ParseFloat(scoreField, 64)
		if err != nil || score < 0 {
			return Record{}, fmt.Errorf("bad score %q", scoreField)
		}
		rec.Verdicts[i].Score = score
	}
	return rec, nil
}

// ForEach streams all remaining rows to fn.
func (r *Reader) ForEach(fn func(Record) error) error {
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}
