package workload

import (
	"strings"
	"testing"
	"time"

	"divscrape/internal/logfmt"
	"divscrape/internal/mitigate"
	"divscrape/internal/sitemodel"
)

// render flattens an event stream to log lines + labels for byte-level
// comparison.
func render(t *testing.T, events []Event) string {
	t.Helper()
	var sb strings.Builder
	for _, ev := range events {
		sb.WriteString(logfmt.FormatCombined(&ev.Entry))
		sb.WriteByte('|')
		sb.WriteString(ev.Label.Archetype.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func collectClosedLoop(t *testing.T, cfg Config, respond func(Event) (Enforcement, error)) []Event {
	t.Helper()
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []Event
	err = gen.RunClosedLoop(func(ev Event) (Enforcement, error) {
		out = append(out, ev)
		enf, err := respond(ev)
		return enf, err
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestClosedLoopAllowEqualsOpenLoop: with an all-Allow response the closed
// loop must reproduce the open-loop stream byte for byte — reactions (and
// their randomness) only fire on adverse actions.
func TestClosedLoopAllowEqualsOpenLoop(t *testing.T) {
	cfg := Config{Seed: 7, Duration: 2 * time.Hour}
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	open, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	closed := collectClosedLoop(t, cfg, func(Event) (Enforcement, error) {
		return Enforcement{Action: mitigate.Allow}, nil
	})
	if len(open) != len(closed) {
		t.Fatalf("open loop %d events, closed loop %d", len(open), len(closed))
	}
	if render(t, open) != render(t, closed) {
		t.Error("all-Allow closed loop diverged from open loop")
	}
}

// TestClosedLoopDeterministic: the same enforcement function replayed from
// the same seed yields a byte-identical stream.
func TestClosedLoopDeterministic(t *testing.T) {
	cfg := Config{Seed: 11, Duration: 2 * time.Hour}
	// Adversarial-ish policy: block every 7th malicious request, challenge
	// every 3rd, tarpit the rest.
	respond := func() func(Event) (Enforcement, error) {
		n := 0
		return func(ev Event) (Enforcement, error) {
			if !ev.Label.Malicious() {
				return Enforcement{Action: mitigate.Allow}, nil
			}
			n++
			switch {
			case n%7 == 0:
				return Enforcement{Action: mitigate.Block}, nil
			case n%3 == 0:
				return Enforcement{Action: mitigate.Challenge}, nil
			default:
				return Enforcement{Action: mitigate.Tarpit, Delay: 2 * time.Second}, nil
			}
		}
	}
	a := collectClosedLoop(t, cfg, respond())
	b := collectClosedLoop(t, cfg, respond())
	if render(t, a) != render(t, b) {
		t.Error("closed-loop runs with identical seed and policy diverged")
	}
}

// scraperOnly is a profile with exactly one actor of the chosen kind, so
// reactions are observable in isolation.
func scraperOnly(set func(*Profile)) Profile {
	p := Profile{}
	set(&p)
	return p
}

// TestBlockedScraperRotatesIP: a naive scraper that gets blocked must come
// back later under a different address.
func TestBlockedScraperRotatesIP(t *testing.T) {
	cfg := Config{
		Seed:     3,
		Duration: 12 * time.Hour,
		Profile: scraperOnly(func(p *Profile) {
			p.NaiveScrapers = 1
			p.NaiveRate = 1
			p.NaiveDuty = 0.9
		}),
	}
	ips := map[string]bool{}
	var blocks int
	events := collectClosedLoop(t, cfg, func(ev Event) (Enforcement, error) {
		ips[ev.Entry.RemoteAddr] = true
		// Block after a short tolerated prefix per address.
		blocks++
		if blocks%10 == 0 {
			return Enforcement{Action: mitigate.Block}, nil
		}
		return Enforcement{Action: mitigate.Allow}, nil
	})
	if len(events) == 0 {
		t.Fatal("no events generated")
	}
	if len(ips) < 2 {
		t.Errorf("blocked scraper never rotated: %d address(es) seen", len(ips))
	}
}

// TestBlockCooldownQuietsActor: after a block the actor goes quiet for at
// least its cooldown before the next request.
func TestBlockCooldownQuietsActor(t *testing.T) {
	cfg := Config{
		Seed:     5,
		Duration: 12 * time.Hour,
		Profile: scraperOnly(func(p *Profile) {
			p.NaiveScrapers = 1
			p.NaiveRate = 1
			p.NaiveDuty = 0.9
		}),
	}
	var blockedAt time.Time
	var resumedGap time.Duration
	events := collectClosedLoop(t, cfg, func(ev Event) (Enforcement, error) {
		if !blockedAt.IsZero() && resumedGap == 0 {
			resumedGap = ev.Entry.Time.Sub(blockedAt)
		}
		if blockedAt.IsZero() && ev.Label.Malicious() {
			blockedAt = ev.Entry.Time
			return Enforcement{Action: mitigate.Block}, nil
		}
		return Enforcement{Action: mitigate.Allow}, nil
	})
	if blockedAt.IsZero() {
		t.Fatal("never blocked anything")
	}
	if len(events) < 2 || resumedGap == 0 {
		t.Fatal("actor never resumed after the block")
	}
	// Naive kit cooldown is 10 minutes.
	if resumedGap < 10*time.Minute {
		t.Errorf("resumed %v after block, want >= 10m", resumedGap)
	}
}

// TestChallengedSolverPostsVerify: a headless scraper answers a challenge
// with the script fetch and the solution beacon within seconds.
func TestChallengedSolverPostsVerify(t *testing.T) {
	cfg := Config{
		Seed:     9,
		Duration: 24 * time.Hour,
		Profile: scraperOnly(func(p *Profile) {
			p.HeadlessScrapers = 1
			p.HeadlessRate = 1
			p.HeadlessDuty = 0.5
		}),
	}
	var challengedAt time.Time
	var verifyAt time.Time
	sawContentAfterVerify := false
	collectClosedLoop(t, cfg, func(ev Event) (Enforcement, error) {
		path := ev.Entry.Path
		if !verifyAt.IsZero() && sitemodel.ClassifyPath(path).Kind.IsPage() {
			sawContentAfterVerify = true
		}
		if challengedAt.IsZero() && sitemodel.ClassifyPath(path).Kind == sitemodel.KindProduct {
			challengedAt = ev.Entry.Time
			return Enforcement{Action: mitigate.Challenge}, nil
		}
		if !challengedAt.IsZero() && verifyAt.IsZero() {
			if path == sitemodel.ChallengeVerifyPath && ev.Entry.Method == "POST" {
				verifyAt = ev.Entry.Time
			}
		}
		return Enforcement{Action: mitigate.Allow}, nil
	})
	if challengedAt.IsZero() {
		t.Fatal("never challenged a product fetch")
	}
	if verifyAt.IsZero() {
		t.Fatal("challenged solver never posted the solution")
	}
	if gap := verifyAt.Sub(challengedAt); gap > 10*time.Second {
		t.Errorf("solution posted %v after challenge, want seconds", gap)
	}
	if !sawContentAfterVerify {
		t.Error("solver never resumed content fetching after verifying")
	}
}

// TestNonSolverGivesUpOnChallenges: a stealth bot (no JS) served only
// challenges stops requesting instead of hammering forever.
func TestNonSolverGivesUpOnChallenges(t *testing.T) {
	cfg := Config{
		Seed:     13,
		Duration: 6 * time.Hour,
		Profile: scraperOnly(func(p *Profile) {
			p.StealthBots = 1
			p.StealthSessionGap = 30 * time.Minute
		}),
	}
	verifies := 0
	challenged := 0
	challengeAll := collectClosedLoop(t, cfg, func(ev Event) (Enforcement, error) {
		if ev.Entry.Path == sitemodel.ChallengeVerifyPath {
			verifies++
		}
		challenged++
		return Enforcement{Action: mitigate.Challenge}, nil
	})
	allowAll := collectClosedLoop(t, cfg, func(ev Event) (Enforcement, error) {
		return Enforcement{Action: mitigate.Allow}, nil
	})
	if verifies != 0 {
		t.Errorf("stealth bot posted %d challenge solutions; it has no JS runtime", verifies)
	}
	if len(challengeAll) >= len(allowAll) {
		t.Errorf("challenge-everything run emitted %d events vs %d allowed — bot never gave up",
			len(challengeAll), len(allowAll))
	}
}

// TestTarpitSlowsActor: a tarpitted scraper's stream stretches out; total
// requests inside the window drop versus an allowed run.
func TestTarpitSlowsActor(t *testing.T) {
	cfg := Config{
		Seed:     17,
		Duration: 6 * time.Hour,
		Profile: scraperOnly(func(p *Profile) {
			p.NaiveScrapers = 1
			p.NaiveRate = 1
			p.NaiveDuty = 0.9
		}),
	}
	tarpitted := collectClosedLoop(t, cfg, func(ev Event) (Enforcement, error) {
		return Enforcement{Action: mitigate.Tarpit, Delay: 2 * time.Second}, nil
	})
	allowed := collectClosedLoop(t, cfg, func(ev Event) (Enforcement, error) {
		return Enforcement{Action: mitigate.Allow}, nil
	})
	if len(tarpitted) >= len(allowed) {
		t.Errorf("tarpit did not slow the scraper: %d vs %d events", len(tarpitted), len(allowed))
	}
	// Timestamps must stay non-decreasing after all the queue surgery.
	for i := 1; i < len(tarpitted); i++ {
		if tarpitted[i].Entry.Time.Before(tarpitted[i-1].Entry.Time) {
			t.Fatalf("event %d out of order: %v before %v",
				i, tarpitted[i].Entry.Time, tarpitted[i-1].Entry.Time)
		}
	}
}

// TestChallengedHumanReverifies: a mid-session challenge makes a human's
// browser re-run the challenge flow rather than losing the shopper.
func TestChallengedHumanReverifies(t *testing.T) {
	cfg := Config{
		Seed:     21,
		Duration: 48 * time.Hour,
		Profile: scraperOnly(func(p *Profile) {
			p.HumanVisitors = 3
			p.HumanSessionsPerDay = 4
		}),
	}
	var challengedAt time.Time
	var reverified bool
	collectClosedLoop(t, cfg, func(ev Event) (Enforcement, error) {
		if !challengedAt.IsZero() && !reverified &&
			ev.Entry.Path == sitemodel.ChallengeVerifyPath && ev.Entry.Method == "POST" {
			reverified = true
		}
		// Challenge one mid-session product view, once.
		if challengedAt.IsZero() && sitemodel.ClassifyPath(ev.Entry.Path).Kind == sitemodel.KindProduct {
			challengedAt = ev.Entry.Time
			return Enforcement{Action: mitigate.Challenge}, nil
		}
		return Enforcement{Action: mitigate.Allow}, nil
	})
	if challengedAt.IsZero() {
		t.Fatal("no product view to challenge")
	}
	if !reverified {
		t.Error("challenged human never re-verified")
	}
}
