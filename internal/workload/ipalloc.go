package workload

import (
	"divscrape/internal/clockwork"
	"divscrape/internal/iprep"
)

// ipAllocator hands out client addresses from the synthetic address plan
// shared with the reputation feed (internal/iprep). Residential and mobile
// allocation deliberately reuses addresses: consumer NAT means several
// humans share one address, which is what makes naive per-IP rate limiting
// produce false positives.
type ipAllocator struct {
	rng *clockwork.Rand
	// natPool is the shared residential address pool humans draw from.
	natPool []string
	// mobilePool is the (small) carrier-grade NAT gateway pool.
	mobilePool []string
}

func newIPAllocator(rng *clockwork.Rand, residentialPoolSize, mobileGateways int) *ipAllocator {
	if residentialPoolSize < 1 {
		residentialPoolSize = 1
	}
	if mobileGateways < 1 {
		mobileGateways = 1
	}
	a := &ipAllocator{rng: rng}
	a.natPool = make([]string, residentialPoolSize)
	for i := range a.natPool {
		a.natPool[i] = a.fromRanges(iprep.ResidentialRanges)
	}
	a.mobilePool = make([]string, mobileGateways)
	for i := range a.mobilePool {
		a.mobilePool[i] = a.fromRanges(iprep.MobileRanges)
	}
	return a
}

// fromRanges draws a uniform address from a prefix set.
func (a *ipAllocator) fromRanges(ranges []iprep.Prefix) string {
	weights := make([]float64, len(ranges))
	for i, p := range ranges {
		weights[i] = float64(p.Size())
	}
	p := ranges[a.rng.WeightedChoice(weights)]
	return iprep.FormatIPv4(p.Nth(a.rng.Uint64()))
}

// residential returns a (shared) consumer address.
func (a *ipAllocator) residential() string {
	return a.natPool[a.rng.IntN(len(a.natPool))]
}

// mobile returns a carrier NAT gateway address (heavily shared).
func (a *ipAllocator) mobile() string {
	return a.mobilePool[a.rng.IntN(len(a.mobilePool))]
}

// corporate returns an enterprise egress address.
func (a *ipAllocator) corporate() string {
	return a.fromRanges(iprep.CorporateRanges)
}

// datacenterListed returns a hosting address the reputation feed knows.
func (a *ipAllocator) datacenterListed() string {
	return a.fromRanges(iprep.DatacenterRanges)
}

// datacenterUnlisted returns a hosting address missing from the feed.
func (a *ipAllocator) datacenterUnlisted() string {
	return a.fromRanges(iprep.DatacenterUnlistedRanges)
}

// proxy returns a known proxy/VPN exit address.
func (a *ipAllocator) proxy() string {
	return a.fromRanges(iprep.ProxyRanges)
}

// searchEngine returns a verified crawler address.
func (a *ipAllocator) searchEngine() string {
	return a.fromRanges(iprep.SearchEngineRanges)
}

// knownScraper returns a blocklisted scraping-infrastructure address.
func (a *ipAllocator) knownScraper() string {
	return a.fromRanges(iprep.KnownScraperRanges)
}

// residentialProxy returns a botnet exit inside consumer space: listed as
// residential by the feed (that is the point of residential proxies) but
// distinct from the human NAT pool.
func (a *ipAllocator) residentialProxy() string {
	return a.fromRanges(iprep.ResidentialRanges)
}
