package workload

import (
	"time"

	"divscrape/internal/clockwork"
	"divscrape/internal/detector"
	"divscrape/internal/sitemodel"
)

// newNaiveScraper builds a crude price-scraping kit: an HTTP library with
// its default User-Agent, running from hosting space, walking the price
// API in ID order at machine-steady pace. It never fetches assets, never
// executes the challenge, and occasionally emits malformed requests and
// overshoots the catalogue (404s). Both detectors catch it: the
// commercial-style one from the first request (signature + reputation),
// the behavioural one as soon as its session warms up.
func newNaiveScraper(id int, site *sitemodel.Site, rng *clockwork.Rand, ips *ipAllocator, start, end time.Time, rate, duty float64) *scripted {
	s := newScripted(id, detector.ArchetypeScraperNaive, site, rng, start, end)
	if rng.Bool(0.8) {
		s.ip = ips.datacenterListed()
	} else {
		s.ip = ips.datacenterUnlisted()
	}
	s.ua = pick(rng, toolUAs)

	if rate <= 0 {
		rate = 0.9
	}
	interval := time.Duration(float64(time.Second) / rate)
	const shift = 2 * time.Hour
	gap := dutyGap(shift, duty)
	cursorID := rng.IntN(site.Products())
	products := site.Products()

	s.cursor = start.Add(time.Duration(rng.Float64() * float64(gap+shift)))

	s.refill = func() bool {
		if s.cursor.After(s.end) {
			return false
		}
		shiftEnd := s.cursor.Add(shift)
		t := s.cursor
		for t.Before(shiftEnd) {
			t = t.Add(rng.Jitter(interval, 0.04))
			p := get(sitemodel.PricePath(cursorID), "-")
			// Overshoot past the catalogue produces 404 probes; the kit
			// wraps around when it notices.
			cursorID++
			if cursorID >= products+40 {
				cursorID = 0
			}
			if rng.Bool(0.003) {
				p.malformed = true
			}
			s.schedule(t, p)
		}
		s.cursor = shiftEnd.Add(rng.Jitter(gap, 0.6))
		return true
	}
	// A crude kit has no JavaScript runtime, so challenges defeat it
	// quickly; when blocked it re-runs from fresh (unlisted) hosting space
	// after a long sulk, and tarpits make it back off hard.
	s.adapt(adaptivity{
		challengePatience: 4,
		rotate:            func() (string, string) { return ips.datacenterUnlisted(), "" },
		blockCooldown:     10 * time.Minute,
		tarpitBackoff:     3,
	})
	s.prime()
	return s
}

// newAggressiveScraper builds a high-rate catalogue sweeper hiding behind
// canned (years-stale) browser User-Agents: it hammers category pagination
// and product pages in bursts of several requests per second, probes the
// admin path, and trips every rate limit. The loudest archetype — and the
// easiest for both detectors.
func newAggressiveScraper(id int, site *sitemodel.Site, rng *clockwork.Rand, ips *ipAllocator, start, end time.Time, rate, duty float64) *scripted {
	s := newScripted(id, detector.ArchetypeScraperAggressive, site, rng, start, end)
	if rng.Bool(0.3) {
		s.ip = ips.knownScraper()
	} else {
		s.ip = ips.datacenterListed()
	}
	s.ua = pick(rng, staleBrowserUAs)

	if rate <= 0 {
		rate = 6
	}
	interval := time.Duration(float64(time.Second) / rate)
	const shift = 30 * time.Minute
	gap := dutyGap(shift, duty)
	category := rng.IntN(site.Categories())
	page := 0

	s.cursor = start.Add(time.Duration(rng.Float64() * float64(gap+shift)))

	s.refill = func() bool {
		if s.cursor.After(s.end) {
			return false
		}
		shiftEnd := s.cursor.Add(shift)
		t := s.cursor
		for t.Before(shiftEnd) {
			// One pagination step, then every product on the page.
			t = t.Add(rng.Jitter(interval, 0.1))
			listing := sitemodel.CategoryPath(category, page)
			s.schedule(t, get(listing, "-"))
			for _, pid := range site.ProductsOnPage(category, page) {
				t = t.Add(rng.Jitter(interval, 0.1))
				if t.After(shiftEnd) {
					break
				}
				p := get(sitemodel.ProductPath(pid), listing)
				if rng.Bool(0.005) {
					p.malformed = true
				}
				s.schedule(t, p)
				if rng.Bool(0.3) {
					t = t.Add(rng.Jitter(interval, 0.1))
					s.schedule(t, get(sitemodel.PricePath(pid), "-"))
				}
			}
			if rng.Bool(0.01) {
				t = t.Add(rng.Jitter(interval, 0.1))
				s.schedule(t, get(sitemodel.AdminPath, "-"))
			}
			page++
			if page >= site.PagesInCategory() {
				page = 0
				category = (category + 1) % site.Categories()
			}
		}
		s.cursor = shiftEnd.Add(rng.Jitter(gap, 0.6))
		return true
	}
	// The loud operator rotates fast and barely slows for tarpits: a new
	// address and a new canned UA within minutes of every block.
	s.adapt(adaptivity{
		challengePatience: 2,
		rotate: func() (string, string) {
			if rng.Bool(0.5) {
				return ips.datacenterListed(), pick(rng, staleBrowserUAs)
			}
			return ips.datacenterUnlisted(), pick(rng, staleBrowserUAs)
		},
		blockCooldown: 2 * time.Minute,
		tarpitBackoff: 0.5,
	})
	s.prime()
	return s
}

// newInfraScraper builds a scraper operating from blocklisted
// infrastructure: moderate-rate price-API enumeration from ranges the
// reputation feed marks as confirmed scraping infrastructure. The
// commercial-style detector convicts it on reputation from request one;
// the behavioural detector needs its warm-up — the structural source of
// early-session single-tool alerts.
func newInfraScraper(id int, site *sitemodel.Site, rng *clockwork.Rand, ips *ipAllocator, start, end time.Time, rate, duty float64) *scripted {
	s := newScripted(id, detector.ArchetypeScraperKnownInfra, site, rng, start, end)
	s.ip = ips.knownScraper()
	if rng.Bool(0.5) {
		s.ua = pick(rng, staleBrowserUAs)
	} else {
		s.ua = pick(rng, currentBrowserUAs)
	}

	if rate <= 0 {
		rate = 1.8
	}
	interval := time.Duration(float64(time.Second) / rate)
	const shift = 90 * time.Minute
	gap := dutyGap(shift, duty)
	cursorID := rng.IntN(site.Products())
	products := site.Products()

	s.cursor = start.Add(time.Duration(rng.Float64() * float64(gap+shift)))

	s.refill = func() bool {
		if s.cursor.After(s.end) {
			return false
		}
		// Sessions rotate within the blocklisted ranges: the operator
		// cycles addresses, but the whole range is burned.
		s.ip = ips.knownScraper()
		shiftEnd := s.cursor.Add(shift)
		t := s.cursor
		for t.Before(shiftEnd) {
			t = t.Add(rng.Jitter(interval, 0.06))
			var p planned
			if rng.Bool(0.7) {
				p = get(sitemodel.PricePath(cursorID), "-")
			} else {
				p = get(sitemodel.ProductPath(cursorID), "-")
				// A cache-aware kit revalidates pages it has seen before.
				p.conditional = rng.Bool(0.02)
			}
			cursorID = (cursorID + 1) % products
			s.schedule(t, p)
		}
		s.cursor = shiftEnd.Add(rng.Jitter(gap, 0.6))
		return true
	}
	// The whole range is burned, so rotation stays inside it — evasion
	// that buys little against a reputation feed, which is the point.
	s.adapt(adaptivity{
		challengePatience: 3,
		rotate:            func() (string, string) { return ips.knownScraper(), "" },
		blockCooldown:     5 * time.Minute,
		tarpitBackoff:     1,
	})
	s.prime()
	return s
}
