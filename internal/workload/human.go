package workload

import (
	"time"

	"divscrape/internal/clockwork"
	"divscrape/internal/detector"
	"divscrape/internal/sitemodel"
)

// newHuman builds a recurring shopper: sessions arrive at the visitor's
// personal frequency (thinned by the diurnal cycle), each session browses
// a handful of pages with log-normal think times, fetches assets like a
// real browser, executes the JavaScript challenge, and navigates with
// referers. Humans share NAT addresses, which is what eventually trips the
// commercial-style detector's per-IP heuristics at the carrier gateways.
func newHuman(id int, site *sitemodel.Site, rng *clockwork.Rand, ips *ipAllocator, start, end time.Time, sessionsPerDay float64, marathon bool) *scripted {
	s := newScripted(id, detector.ArchetypeHuman, site, rng, start, end)
	s.ua = pick(rng, currentBrowserUAs)

	// Device type fixes the address family for the visitor's lifetime.
	deviceRoll := rng.Float64()
	refreshIP := func() {
		switch {
		case deviceRoll < 0.62:
			s.ip = ips.residential()
		case deviceRoll < 0.88:
			s.ip = ips.mobile()
		default:
			s.ip = ips.corporate()
		}
	}
	refreshIP()

	meanGap := time.Duration(float64(24*time.Hour) / sessionsPerDay)
	zipf := clockwork.NewZipf(rng, 1.25, uint64(site.Products()))
	returning := false

	// Spread first sessions across the first gap window.
	s.cursor = start.Add(time.Duration(rng.Float64() * float64(meanGap)))

	s.refill = func() bool {
		// Inter-session gap with diurnal thinning: redraw gaps that land
		// in the dead of night (bounded retries keep this deterministic
		// and total).
		for try := 0; try < 6; try++ {
			gap := rng.Exp(meanGap)
			candidate := s.cursor.Add(gap)
			if rng.Float64() < clockwork.Diurnal(candidate, 0.25, 1.0) {
				s.cursor = candidate
				break
			}
			s.cursor = candidate
		}
		if s.cursor.After(s.end) {
			return false
		}
		if rng.Bool(0.25) {
			refreshIP() // DHCP churn / network change between sessions
		}
		if marathon {
			planMarathonSession(s, rng, returning)
		} else {
			planHumanSession(s, rng, zipf, returning)
		}
		returning = true
		return true
	}
	// A browser re-executes the challenge transparently; a 403 makes the
	// shopper give up on the visit (the collateral the experiments price),
	// and a tarpitted page is simply waited out.
	s.adapt(adaptivity{solveChallenge: true})
	s.prime()
	return s
}

// planMarathonSession appends a marathon comparison-shopping session: a
// human power user sweeping listing pages and opening every interesting
// product in order, fast, for an hour or more. Entirely benign — and close
// enough to mechanical crawling that behavioural detectors false-positive
// on it, which is the trade-off the labelled experiments quantify.
func planMarathonSession(s *scripted, rng *clockwork.Rand, returning bool) {
	site := s.site
	t := s.cursor

	external := pick(rng, externalReferers)
	s.schedule(t, get(sitemodel.HomePath, external))
	planAssets(s, rng, t, returning, -1)
	ct := t.Add(rng.Jitter(500*time.Millisecond, 0.5))
	s.schedule(ct, get(sitemodel.ChallengeScriptPath, sitemodel.HomePath))
	s.schedule(ct.Add(rng.Jitter(time.Second, 0.4)),
		planned{method: "POST", path: sitemodel.ChallengeVerifyPath, referer: sitemodel.HomePath})

	pages := 90 + geometric(rng, 60)
	category := rng.IntN(site.Categories())
	page := 0
	listing := sitemodel.CategoryPath(category, page)
	t = t.Add(rng.LogNormal(4*time.Second, 0.5))
	s.schedule(t, get(listing, sitemodel.HomePath))
	onPage := site.ProductsOnPage(category, page)
	idx := 0
	for i := 0; i < pages; i++ {
		t = t.Add(rng.LogNormal(1800*time.Millisecond, 0.4))
		if t.After(s.end) {
			break
		}
		if idx >= len(onPage) || rng.Bool(0.12) {
			// Next listing page (or next category when exhausted).
			page++
			if page >= site.PagesInCategory() || rng.Bool(0.2) {
				category = rng.IntN(site.Categories())
				page = 0
			}
			listing = sitemodel.CategoryPath(category, page)
			s.schedule(t, get(listing, sitemodel.HomePath))
			onPage = site.ProductsOnPage(category, page)
			idx = 0
			continue
		}
		// Tab-opening products left to right: sequential IDs, human speed.
		pid := onPage[idx]
		idx++
		s.schedule(t, get(sitemodel.ProductPath(pid), listing))
		planAssets(s, rng, t, returning, pid)
	}
}

// planHumanSession appends one full browsing session to the actor queue.
func planHumanSession(s *scripted, rng *clockwork.Rand, zipf *clockwork.Zipf, returning bool) {
	site := s.site
	t := s.cursor

	// Entry: occasional region redirect, then the landing page.
	external := pick(rng, externalReferers)
	if rng.Bool(0.22) {
		s.schedule(t, get(sitemodel.GeoPath, external))
		t = t.Add(rng.Jitter(300*time.Millisecond, 0.5))
	}
	landing := sitemodel.HomePath
	s.schedule(t, get(landing, external))
	planAssets(s, rng, t, returning, -1)

	// Challenge: real browsers execute the script and post the solution.
	if rng.Bool(0.97) { // a sliver of users block JS
		ct := t.Add(rng.Jitter(500*time.Millisecond, 0.5))
		s.schedule(ct, get(sitemodel.ChallengeScriptPath, landing))
		vt := ct.Add(rng.Jitter(900*time.Millisecond, 0.5))
		s.schedule(vt, planned{method: "POST", path: sitemodel.ChallengeVerifyPath, referer: landing})
	}

	pages := 2 + geometric(rng, 8)
	prev := landing
	category := rng.IntN(site.Categories())
	page := 0
	for i := 0; i < pages; i++ {
		t = t.Add(rng.LogNormal(8*time.Second, 1.1))
		if t.After(s.end) {
			break
		}
		var path string
		roll := rng.Float64()
		switch {
		case roll < 0.34:
			// Category browsing, sometimes paging deeper.
			if rng.Bool(0.4) && page+1 < site.PagesInCategory() {
				page++
			} else {
				category = rng.IntN(site.Categories())
				page = 0
			}
			path = sitemodel.CategoryPath(category, page)
		case roll < 0.72:
			// Product view, popularity-weighted, picked out of order.
			path = sitemodel.ProductPath(int(zipf.Next()))
		case roll < 0.87:
			path = sitemodel.SearchPath(searchQuery(rng))
		case roll < 0.95:
			path = sitemodel.CartPath
		default:
			path = sitemodel.CheckoutPath
		}
		s.schedule(t, get(path, prev))
		info := sitemodel.ClassifyPath(path)
		pid := -1
		if info.Kind == sitemodel.KindProduct {
			pid = info.ProductID
		}
		planAssets(s, rng, t, returning, pid)
		prev = path
	}
}

// planAssets schedules the asset fetches a browser issues after an HTML
// page: shared statics (conditional on revisits) plus the product image.
func planAssets(s *scripted, rng *clockwork.Rand, pageTime time.Time, returning bool, productID int) {
	at := pageTime
	for _, asset := range sitemodel.StaticAssets() {
		if rng.Bool(0.25) {
			continue // cached without revalidation
		}
		at = at.Add(rng.Jitter(90*time.Millisecond, 0.8))
		s.schedule(at, planned{
			method:      "GET",
			path:        asset,
			referer:     "-",
			conditional: returning && rng.Bool(0.6),
		})
	}
	if productID >= 0 {
		at = at.Add(rng.Jitter(120*time.Millisecond, 0.8))
		s.schedule(at, get(sitemodel.ProductAssets(productID)[0], "-"))
	}
}

// geometric draws a geometric count with the given mean (>= 0).
func geometric(rng *clockwork.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1 / (mean + 1)
	n := 0
	for !rng.Bool(p) && n < 500 {
		n++
	}
	return n
}

var searchTerms = []string{
	"flights paris", "hotel deals", "rome weekend", "cheap tickets",
	"beach resort", "city break", "last minute", "family holiday",
	"business class", "airport transfer",
}

func searchQuery(rng *clockwork.Rand) string {
	return pick(rng, searchTerms)
}
