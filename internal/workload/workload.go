// Package workload synthesises the labelled Apache access-log dataset the
// evaluation runs on, playing the role of the proprietary Amadeus traffic
// the DSN 2018 paper analysed. It simulates an e-commerce site's clients as
// independent actors — human shoppers, benign bots, and five scraping
// archetypes — each a deterministic state machine over a seeded PRNG, and
// merges their request streams in timestamp order.
//
// Every emitted request carries a ground-truth label (actor id and
// archetype), which is exactly the labelling the paper names as its next
// step; the labels enable experiments E5-E10.
package workload

import (
	"container/heap"
	"fmt"
	"time"

	"divscrape/internal/detector"
	"divscrape/internal/logfmt"
	"divscrape/internal/sitemodel"
)

// Event is one generated request with its ground truth.
type Event struct {
	// Entry is the access-log record.
	Entry logfmt.Entry
	// Label is the generating actor's identity.
	Label detector.Label
}

// Config parameterises a generation run.
type Config struct {
	// Seed makes the run reproducible; identical configs generate
	// byte-identical logs.
	Seed uint64
	// Start is the beginning of the capture window. The zero value
	// selects 2018-03-11 00:00 UTC, the paper's window.
	Start time.Time
	// Duration is the capture length. Zero selects 8 days (the paper's).
	Duration time.Duration
	// Site overrides the site model; nil selects sitemodel.DefaultConfig.
	Site *sitemodel.Site
	// Profile is the traffic mix. A zero profile selects
	// CalibratedProfile(1), the paper-shaped mix.
	Profile Profile
}

// DefaultStart is the beginning of the paper's capture window.
func DefaultStart() time.Time {
	return time.Date(2018, time.March, 11, 0, 0, 0, 0, time.UTC)
}

func (c *Config) applyDefaults() error {
	if c.Start.IsZero() {
		c.Start = DefaultStart()
	}
	if c.Duration <= 0 {
		c.Duration = 8 * 24 * time.Hour
	}
	if c.Site == nil {
		site, err := sitemodel.New(sitemodel.DefaultConfig())
		if err != nil {
			return fmt.Errorf("workload: default site: %w", err)
		}
		c.Site = site
	}
	if c.Profile.isZero() {
		c.Profile = CalibratedProfile(1)
	}
	return c.Profile.validate()
}

// Generator produces the event stream for one config.
type Generator struct {
	cfg Config
	end time.Time
}

// NewGenerator validates cfg and prepares a generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	return &Generator{cfg: cfg, end: cfg.Start.Add(cfg.Duration)}, nil
}

// Config returns the effective (defaulted) configuration.
func (g *Generator) Config() Config { return g.cfg }

// Run streams every event in timestamp order to emit. It stops early and
// returns emit's error if emit fails.
func (g *Generator) Run(emit func(Event) error) error {
	actors := buildActors(g.cfg, g.end)
	h := make(actorHeap, 0, len(actors))
	for _, a := range actors {
		if !a.done && !a.cursorTime().After(g.end) {
			h = append(h, a)
		}
	}
	heap.Init(&h)

	var ev Event
	for h.Len() > 0 {
		a := h[0]
		more := a.produce(&ev)
		if err := emit(ev); err != nil {
			return err
		}
		if more && !a.cursorTime().After(g.end) {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return nil
}

// Generate collects the whole run in memory; convenient for tests and
// reduced-scale experiments.
func (g *Generator) Generate() ([]Event, error) {
	var out []Event
	err := g.Run(func(ev Event) error {
		out = append(out, ev)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// actorHeap orders actors by their next event time, breaking ties by actor
// id so runs are deterministic regardless of heap internals.
type actorHeap []*scripted

func (h actorHeap) Len() int { return len(h) }
func (h actorHeap) Less(i, j int) bool {
	ti, tj := h[i].cursorTime(), h[j].cursorTime()
	if !ti.Equal(tj) {
		return ti.Before(tj)
	}
	return h[i].id < h[j].id
}
func (h actorHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *actorHeap) Push(x any) { *h = append(*h, x.(*scripted)) }

func (h *actorHeap) Pop() any {
	old := *h
	n := len(old)
	a := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return a
}
