package workload

import (
	"time"

	"divscrape/internal/clockwork"
	"divscrape/internal/detector"
	"divscrape/internal/logfmt"
	"divscrape/internal/sitemodel"
)

// planned is one scheduled request in an actor's private queue.
type planned struct {
	at          time.Time
	method      string
	path        string
	referer     string
	ua          string // overrides the actor's User-Agent when non-empty
	conditional bool
	malformed   bool
}

// scripted is the shared actor machinery: a private queue of planned
// requests and a refill hook that archetype constructors provide as a
// closure over their own state. The generator's heap orders actors by the
// head of their queues.
//
// Invariant: after construction and after every produce() returning true,
// the queue is non-empty and its head is the actor's next event.
type scripted struct {
	id     int
	arch   detector.Archetype
	site   *sitemodel.Site
	rng    *clockwork.Rand
	end    time.Time
	ip     string
	ua     string
	auth   string
	queue  []planned
	qhead  int
	cursor time.Time // scheduling position for planners
	done   bool
	// refill plans the next batch of requests into the queue, advancing
	// cursor. It returns false when the actor retires. refill must append
	// at least one request when returning true, with non-decreasing times
	// starting at or after cursor.
	refill func() bool
	// react, when set, observes the enforcement outcome of each emitted
	// request in closed-loop runs (RunClosedLoop) and may reshape the
	// pending queue: delay it, abandon it, rotate the actor's network
	// identity, or splice in a challenge solution. Never called by the
	// open-loop Run, so open-loop streams are unaffected.
	react func(ev *Event, enf Enforcement)
}

// newScripted wires the common fields; the caller sets ip/ua/auth/refill
// and must call prime() before the actor is handed to the heap.
func newScripted(id int, arch detector.Archetype, site *sitemodel.Site, rng *clockwork.Rand, start, end time.Time) *scripted {
	return &scripted{
		id:     id,
		arch:   arch,
		site:   site,
		rng:    rng,
		end:    end,
		cursor: start,
		auth:   "-",
	}
}

// prime fills the initial queue. Actors whose refill immediately declines
// are marked done.
func (s *scripted) prime() {
	if !s.fill() {
		s.done = true
	}
}

// cursorTime returns the time of the actor's next event.
func (s *scripted) cursorTime() time.Time {
	if s.qhead < len(s.queue) {
		return s.queue[s.qhead].at
	}
	return s.end.Add(time.Hour) // exhausted: sorts past the horizon
}

// schedule appends a request to the queue at the given absolute time and
// advances the cursor to it. Emission times are truncated to whole
// seconds — the resolution of Apache's log format — so that analysing the
// in-memory stream and re-parsing the written log see identical
// timestamps. Planning still happens at full resolution (the cursor keeps
// sub-second precision), so pacing does not drift.
func (s *scripted) schedule(at time.Time, p planned) {
	if at.Before(s.cursor) {
		at = s.cursor
	}
	p.at = at.Truncate(time.Second)
	s.queue = append(s.queue, p)
	s.cursor = at
}

// fill invokes refill until the queue has an entry or the actor retires.
func (s *scripted) fill() bool {
	for s.qhead >= len(s.queue) {
		s.queue = s.queue[:0]
		s.qhead = 0
		if s.refill == nil || !s.refill() {
			return false
		}
	}
	return true
}

// produce materialises the head request into an Event and advances. It
// returns false when the actor has no further events.
func (s *scripted) produce(out *Event) bool {
	p := s.queue[s.qhead]
	s.qhead++

	resp := s.site.Respond(sitemodel.PageRequest{
		Method:      p.method,
		Path:        p.path,
		Conditional: p.conditional,
		Malformed:   p.malformed,
		Roll:        s.rng.Float64(),
	})
	referer := p.referer
	if referer == "" {
		referer = "-"
	}
	ua := p.ua
	if ua == "" {
		ua = s.ua
	}
	*out = Event{
		Entry: logfmt.Entry{
			RemoteAddr: s.ip,
			Identity:   "-",
			AuthUser:   s.auth,
			Time:       p.at,
			Method:     p.method,
			Path:       p.path,
			Proto:      "HTTP/1.1",
			Status:     resp.Status,
			Bytes:      resp.Bytes,
			Referer:    referer,
			UserAgent:  ua,
		},
		Label: detector.Label{ActorID: s.id, Archetype: s.arch},
	}
	if !s.fill() {
		s.done = true
		return false
	}
	return !s.queue[s.qhead].at.After(s.end)
}

// get is a convenience for planners: a GET request.
func get(path, referer string) planned {
	return planned{method: "GET", path: path, referer: referer}
}
