package workload

import (
	"bytes"
	"testing"
	"time"

	"divscrape/internal/detector"
	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
	"divscrape/internal/sitemodel"
)

func smallConfig(seed uint64, hours int) Config {
	return Config{
		Seed:     seed,
		Duration: time.Duration(hours) * time.Hour,
	}
}

func generate(t testing.TB, cfg Config) []Event {
	t.Helper()
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestEventsAreTimeOrdered(t *testing.T) {
	events := generate(t, smallConfig(42, 6))
	if len(events) == 0 {
		t.Fatal("no events")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Entry.Time.Before(events[i-1].Entry.Time) {
			t.Fatalf("event %d at %v precedes event %d at %v",
				i, events[i].Entry.Time, i-1, events[i-1].Entry.Time)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := generate(t, smallConfig(42, 3))
	b := generate(t, smallConfig(42, 3))
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Entry.Equal(&b[i].Entry) || a[i].Label != b[i].Label {
			t.Fatalf("event %d differs between identical runs", i)
		}
	}
	c := generate(t, smallConfig(43, 3))
	if len(a) == len(c) {
		same := true
		for i := range a {
			if !a[i].Entry.Equal(&c[i].Entry) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical runs")
		}
	}
}

func TestEventsStayInsideWindow(t *testing.T) {
	cfg := smallConfig(42, 4)
	events := generate(t, cfg)
	start := DefaultStart()
	end := start.Add(cfg.Duration)
	for i, ev := range events {
		if ev.Entry.Time.Before(start) || ev.Entry.Time.After(end) {
			t.Fatalf("event %d at %v outside [%v, %v]", i, ev.Entry.Time, start, end)
		}
	}
}

func TestAllArchetypesPresentInADay(t *testing.T) {
	events := generate(t, smallConfig(42, 24))
	seen := make(map[detector.Archetype]int)
	for _, ev := range events {
		seen[ev.Label.Archetype]++
	}
	for _, arch := range detector.Archetypes() {
		if seen[arch] == 0 {
			t.Errorf("archetype %s absent from a 24h run", arch)
		}
	}
	// Scrapers must dominate (the paper's subset is bot-heavy).
	var scraper, benign int
	for arch, n := range seen {
		if arch.Malicious() {
			scraper += n
		} else {
			benign += n
		}
	}
	if scraper < 3*benign {
		t.Errorf("traffic mix off: %d scraper vs %d benign requests", scraper, benign)
	}
}

func TestEntriesAreValidCombinedLogFormat(t *testing.T) {
	events := generate(t, smallConfig(7, 2))
	for i := range events {
		line := logfmt.FormatCombined(&events[i].Entry)
		back, err := logfmt.ParseCombined(line)
		if err != nil {
			t.Fatalf("event %d does not round-trip: %v\n%s", i, err, line)
		}
		if !back.Equal(&events[i].Entry) {
			t.Fatalf("event %d mutated by round-trip", i)
		}
	}
}

func TestClientAddressesComeFromThePlan(t *testing.T) {
	events := generate(t, smallConfig(42, 6))
	all := [][]iprep.Prefix{
		iprep.ResidentialRanges, iprep.MobileRanges, iprep.CorporateRanges,
		iprep.DatacenterRanges, iprep.DatacenterUnlistedRanges,
		iprep.ProxyRanges, iprep.TorExitRanges,
		iprep.SearchEngineRanges, iprep.KnownScraperRanges,
	}
	inPlan := func(ip uint32) bool {
		for _, ranges := range all {
			for _, p := range ranges {
				if p.Contains(ip) {
					return true
				}
			}
		}
		return false
	}
	for i, ev := range events {
		ip, err := iprep.ParseIPv4(ev.Entry.RemoteAddr)
		if err != nil {
			t.Fatalf("event %d has invalid address %q", i, ev.Entry.RemoteAddr)
		}
		if !inPlan(ip) {
			t.Fatalf("event %d address %s outside the address plan", i, ev.Entry.RemoteAddr)
		}
	}
}

func TestLabelsAlignWithBehaviour(t *testing.T) {
	events := generate(t, smallConfig(42, 24))
	for i, ev := range events {
		arch := ev.Label.Archetype
		// Partner traffic carries credentials; nothing else does.
		hasAuth := ev.Entry.AuthUser != "-" && ev.Entry.AuthUser != ""
		if hasAuth != (arch == detector.ArchetypePartnerAPI) {
			t.Fatalf("event %d: auth=%q but archetype=%s", i, ev.Entry.AuthUser, arch)
		}
		if arch == detector.ArchetypeSearchBot {
			ip, _ := iprep.ParseIPv4(ev.Entry.RemoteAddr)
			ok := false
			for _, p := range iprep.SearchEngineRanges {
				if p.Contains(ip) {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("search bot event %d from non-verified range %s", i, ev.Entry.RemoteAddr)
			}
		}
	}
}

func TestHumansExecuteChallenge(t *testing.T) {
	events := generate(t, smallConfig(42, 24))
	humanVerify := 0
	scraperStealthVerify := 0
	for _, ev := range events {
		if ev.Entry.Path == sitemodel.ChallengeVerifyPath {
			switch ev.Label.Archetype {
			case detector.ArchetypeHuman:
				humanVerify++
			case detector.ArchetypeScraperStealth:
				scraperStealthVerify++
			}
		}
	}
	if humanVerify == 0 {
		t.Error("no human challenge verifications in a full day")
	}
	if scraperStealthVerify != 0 {
		t.Error("stealth bots must not execute the challenge")
	}
}

func TestProfileValidation(t *testing.T) {
	bad := CalibratedProfile(1)
	bad.NaiveScrapers = -1
	if _, err := NewGenerator(Config{Profile: bad, Duration: time.Hour}); err == nil {
		t.Error("negative actor count accepted")
	}
	bad2 := CalibratedProfile(1)
	bad2.CrawlDuty = 1.5
	if _, err := NewGenerator(Config{Profile: bad2, Duration: time.Hour}); err == nil {
		t.Error("duty > 1 accepted")
	}
	bad3 := CalibratedProfile(1)
	bad3.MarathonShare = -0.1
	if _, err := NewGenerator(Config{Profile: bad3, Duration: time.Hour}); err == nil {
		t.Error("negative marathon share accepted")
	}
	if CalibratedProfile(0).Total() == 0 {
		t.Error("zero scale should clamp, not empty the profile")
	}
	if CalibratedProfile(2).HumanVisitors <= CalibratedProfile(1).HumanVisitors {
		t.Error("scale factor not applied")
	}
}

func TestGeneratorConfigDefaults(t *testing.T) {
	gen, err := NewGenerator(Config{Seed: 1, Duration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	cfg := gen.Config()
	if cfg.Start != DefaultStart() {
		t.Errorf("default start = %v", cfg.Start)
	}
	if cfg.Site == nil || cfg.Profile.isZero() {
		t.Error("defaults not applied")
	}
}

func TestWriteDatasetAndReadLabels(t *testing.T) {
	gen, err := NewGenerator(smallConfig(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	var logBuf, labelBuf bytes.Buffer
	n, err := WriteDataset(gen, &logBuf, &labelBuf)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty dataset")
	}

	labels, err := ReadLabels(&labelBuf)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(labels)) != n {
		t.Fatalf("label count %d != request count %d", len(labels), n)
	}

	// Log lines parse and count matches.
	lr := logfmt.NewReader(&logBuf, logfmt.ReaderConfig{})
	var logCount uint64
	err = lr.ForEach(func(logfmt.Entry) error {
		logCount++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if logCount != n {
		t.Fatalf("log line count %d != %d", logCount, n)
	}
}

func TestReadLabelsErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{"bad header", "wrong,header\n0,1,human\n"},
		{"short row", "seq,actor_id,archetype\n0,1\n"},
		{"bad seq", "seq,actor_id,archetype\nx,1,human\n"},
		{"out of order", "seq,actor_id,archetype\n1,1,human\n"},
		{"bad actor", "seq,actor_id,archetype\n0,x,human\n"},
		{"bad archetype", "seq,actor_id,archetype\n0,1,alien\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadLabels(bytes.NewReader([]byte(tt.give))); err == nil {
				t.Error("malformed labels accepted")
			}
		})
	}
}

func TestDiurnalHumanActivity(t *testing.T) {
	events := generate(t, smallConfig(42, 24))
	night, day := 0, 0
	for _, ev := range events {
		if ev.Label.Archetype != detector.ArchetypeHuman {
			continue
		}
		h := ev.Entry.Time.Hour()
		if h >= 2 && h < 6 {
			night++
		}
		if h >= 14 && h < 18 {
			day++
		}
	}
	if day <= night {
		t.Errorf("human traffic not diurnal: night(2-6h)=%d day(14-18h)=%d", night, day)
	}
}

func BenchmarkGenerate24h(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gen, err := NewGenerator(smallConfig(42, 24))
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		err = gen.Run(func(Event) error {
			n++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(n), "events/run")
	}
}
