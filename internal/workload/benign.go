package workload

import (
	"strconv"
	"time"

	"divscrape/internal/clockwork"
	"divscrape/internal/detector"
	"divscrape/internal/sitemodel"
)

// newSearchCrawler builds a verified search-engine crawler: it fetches
// robots.txt at the start of each crawl shift, walks categories and
// products politely at the advertised crawl delay, honours the disallow
// rules, and uses conditional GETs for content it has seen before. Both
// detectors whitelist it once its address verifies — but behaviourally it
// looks very like a scraper, which is the point the paper's related work
// makes about crawler detection.
func newSearchCrawler(id int, site *sitemodel.Site, rng *clockwork.Rand, ips *ipAllocator, start, end time.Time, duty float64, delay time.Duration) *scripted {
	s := newScripted(id, detector.ArchetypeSearchBot, site, rng, start, end)
	s.ip = ips.searchEngine()
	s.ua = pick(rng, searchBotUAs)

	// Short, frequent crawl bursts: real crawlers revisit several times a
	// day rather than in one long pass, and the short cycle guarantees
	// the archetype is present even in single-day captures.
	const shift = 30 * time.Minute
	gap := dutyGap(shift, duty)
	category, page, product := 0, 0, 0
	visited := false

	s.cursor = start.Add(time.Duration(rng.Float64() * float64(gap+shift)))

	s.refill = func() bool {
		shiftEnd := s.cursor.Add(shift)
		s.schedule(s.cursor, get(sitemodel.RobotsPath, "-"))
		t := s.cursor
		for t.Before(shiftEnd) && !t.After(s.end) {
			t = t.Add(rng.Jitter(delay, 0.2))
			var path string
			switch {
			case product < len(site.ProductsOnPage(category, page)):
				ids := site.ProductsOnPage(category, page)
				path = sitemodel.ProductPath(ids[product])
				product++
			case page+1 < site.PagesInCategory():
				page++
				product = 0
				path = sitemodel.CategoryPath(category, page)
			default:
				category = (category + 1) % site.Categories()
				page, product = 0, 0
				path = sitemodel.CategoryPath(category, 0)
			}
			s.schedule(t, planned{
				method:      "GET",
				path:        path,
				referer:     "-",
				conditional: visited && rng.Bool(0.45),
			})
		}
		visited = true
		s.cursor = s.cursor.Add(shift).Add(rng.Jitter(gap, 0.6))
		return !s.cursor.After(s.end) || len(s.queue) > 0
	}
	// A crawler fetches no scripts, so challenges go unanswered; when the
	// site pushes back it politely backs away for an hour rather than
	// evading — well-behaved automation does not rotate.
	s.adapt(adaptivity{
		challengePatience: 8,
		blockCooldown:     time.Hour,
		tarpitBackoff:     1,
	})
	s.prime()
	return s
}

// newMonitor builds an uptime monitor probing the health endpoint and the
// home page on a fixed period — declared automation that operators
// whitelist.
func newMonitor(id int, site *sitemodel.Site, rng *clockwork.Rand, ips *ipAllocator, start, end time.Time, interval time.Duration) *scripted {
	s := newScripted(id, detector.ArchetypeMonitor, site, rng, start, end)
	s.ip = ips.corporate()
	s.ua = pick(rng, monitorUAs)

	probeHome := false
	s.cursor = start.Add(time.Duration(rng.Float64() * float64(interval)))
	s.refill = func() bool {
		if s.cursor.After(s.end) {
			return false
		}
		path := sitemodel.HealthPath
		if probeHome {
			path = sitemodel.HomePath
		}
		probeHome = !probeHome
		s.schedule(s.cursor, get(path, "-"))
		s.cursor = s.cursor.Add(rng.Jitter(interval, 0.02))
		return true
	}
	s.prime()
	return s
}

// newPartner builds an authenticated partner integration: a sanctioned
// tool-UA client polling the price API during business hours with
// credentials. Its requests carry an auth user, which both detectors
// treat as sanctioned automation — precisely why the label matters for
// the false-positive analysis.
func newPartner(id int, site *sitemodel.Site, rng *clockwork.Rand, ips *ipAllocator, start, end time.Time, rate float64) *scripted {
	s := newScripted(id, detector.ArchetypePartnerAPI, site, rng, start, end)
	s.ip = ips.corporate()
	s.ua = pick(rng, partnerUAs)
	s.auth = "ota-partner-" + strconv.Itoa(id%97)

	if rate <= 0 {
		rate = 0.04
	}
	mean := time.Duration(float64(time.Second) / rate)
	products := site.Products()
	s.cursor = nextBusinessHour(start)

	s.refill = func() bool {
		if s.cursor.After(s.end) {
			return false
		}
		s.cursor = nextBusinessHour(s.cursor)
		s.schedule(s.cursor, get(sitemodel.PricePath(rng.IntN(products)), "-"))
		s.cursor = s.cursor.Add(rng.Exp(mean))
		return true
	}
	s.prime()
	return s
}

// nextBusinessHour clamps t forward into the 08:00-16:00 UTC window.
func nextBusinessHour(t time.Time) time.Time {
	h := t.Hour()
	switch {
	case h < 8:
		return time.Date(t.Year(), t.Month(), t.Day(), 8, 0, 0, 0, t.Location())
	case h >= 16:
		next := t.AddDate(0, 0, 1)
		return time.Date(next.Year(), next.Month(), next.Day(), 8, 0, 0, 0, t.Location())
	default:
		return t
	}
}

// dutyGap converts a shift length and duty cycle into the mean gap
// between shifts.
func dutyGap(shift time.Duration, duty float64) time.Duration {
	if duty <= 0 {
		duty = 0.01
	}
	if duty >= 1 {
		return 0
	}
	return time.Duration(float64(shift) * (1 - duty) / duty)
}
