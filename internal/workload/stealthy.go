package workload

import (
	"time"

	"divscrape/internal/clockwork"
	"divscrape/internal/detector"
	"divscrape/internal/sitemodel"
)

// newHeadlessScraper builds the archetype that defeats fingerprinting: a
// real headless browser whose User-Agent override is current and
// consistent. It executes the JavaScript challenge, fetches assets, sends
// referers and stays under the rate ceiling — every per-request check
// passes. But its *behaviour* is a machine's: it walks categories
// depth-first, opens every product in ID order with near-constant pacing,
// and covers more catalogue in an hour than a human does in a year. The
// behavioural detector owns this archetype; the commercial-style one is
// structurally blind to it (the paper's "Arcane only" bucket).
func newHeadlessScraper(id int, site *sitemodel.Site, rng *clockwork.Rand, ips *ipAllocator, start, end time.Time, rate, duty float64) *scripted {
	s := newScripted(id, detector.ArchetypeScraperHeadless, site, rng, start, end)
	if rng.Bool(0.7) {
		s.ip = ips.datacenterUnlisted()
	} else {
		s.ip = ips.proxy()
	}
	s.ua = pick(rng, currentBrowserUAs)

	if rate <= 0 {
		rate = 0.7
	}
	interval := time.Duration(float64(time.Second) / rate)
	// One harvesting run per day, at an operator-chosen hour: duty scales
	// the shift length. This daily cadence matches real price-monitoring
	// services (fresh fares once a day) and keeps the archetype present in
	// short captures.
	shift := time.Duration(float64(24*time.Hour) * duty)
	if shift < 4*time.Minute {
		shift = 4 * time.Minute
	}
	category := rng.IntN(site.Categories())
	page := 0
	runHour := time.Duration(rng.IntN(22)) * time.Hour

	s.cursor = start.Add(runHour).Add(time.Duration(rng.Float64() * float64(time.Hour)))

	s.refill = func() bool {
		if s.cursor.After(s.end) {
			return false
		}
		shiftEnd := s.cursor.Add(shift)
		t := s.cursor

		// A real browser start: landing page, assets, challenge solved.
		s.schedule(t, get(sitemodel.HomePath, "-"))
		planAssets(s, rng, t, false, -1)
		ct := t.Add(rng.Jitter(600*time.Millisecond, 0.3))
		s.schedule(ct, get(sitemodel.ChallengeScriptPath, sitemodel.HomePath))
		s.schedule(ct.Add(rng.Jitter(time.Second, 0.3)),
			planned{method: "POST", path: sitemodel.ChallengeVerifyPath, referer: sitemodel.HomePath})
		t = ct.Add(2 * time.Second)

		prev := sitemodel.HomePath
		for t.Before(shiftEnd) {
			listing := sitemodel.CategoryPath(category, page)
			t = t.Add(rng.LogNormal(interval, 0.15))
			s.schedule(t, get(listing, prev))
			for _, pid := range site.ProductsOnPage(category, page) {
				t = t.Add(rng.LogNormal(interval, 0.15))
				if t.After(shiftEnd) {
					break
				}
				s.schedule(t, get(sitemodel.ProductPath(pid), listing))
				// Headless rendering pulls the product image too.
				s.schedule(t.Add(rng.Jitter(150*time.Millisecond, 0.5)),
					get(sitemodel.ProductAssets(pid)[0], "-"))
			}
			prev = listing
			page++
			if page >= site.PagesInCategory() {
				page = 0
				category = (category + 1) % site.Categories()
			}
		}
		// Next run: same hour tomorrow, jittered.
		s.cursor = s.cursor.Add(rng.Jitter(24*time.Hour, 0.05))
		return true
	}
	// A real browser solves every challenge; a blocked run restarts from a
	// fresh exit after a careful pause, and tarpits are respected (the
	// operator tuned it to stay under ceilings).
	s.adapt(adaptivity{
		solveChallenge: true,
		rotate: func() (string, string) {
			if rng.Bool(0.7) {
				return ips.datacenterUnlisted(), ""
			}
			return ips.proxy(), ""
		},
		blockCooldown: 15 * time.Minute,
		tarpitBackoff: 2,
	})
	s.prime()
	return s
}

// newStealthBot builds one node of a distributed low-and-slow botnet: tiny
// sessions (a handful of product or price views) from rotating
// residential-proxy exits, with human-ish pacing and a fresh canned
// User-Agent per session. Most of those canned strings are years stale —
// the fingerprint tell the commercial-style detector convicts on — while
// the per-session volume stays below the behavioural detector's warm-up
// (the paper's "Distil only" bucket). Sessions that draw a current string
// slip past both: the residual false negatives a labelled analysis would
// expose.
func newStealthBot(id int, site *sitemodel.Site, rng *clockwork.Rand, ips *ipAllocator, start, end time.Time, sessionGap time.Duration) *scripted {
	s := newScripted(id, detector.ArchetypeScraperStealth, site, rng, start, end)
	if sessionGap <= 0 {
		sessionGap = 70 * time.Minute
	}
	zipf := clockwork.NewZipf(rng, 1.2, uint64(site.Products()))

	rotate := func() {
		if rng.Bool(0.85) {
			s.ip = ips.residentialProxy()
		} else {
			s.ip = ips.proxy()
		}
		if rng.Bool(0.55) {
			s.ua = pick(rng, staleBrowserUAs)
		} else {
			s.ua = pick(rng, currentBrowserUAs)
		}
	}
	s.cursor = start.Add(time.Duration(rng.Float64() * float64(sessionGap)))

	s.refill = func() bool {
		if s.cursor.After(s.end) {
			return false
		}
		rotate()
		n := 5 + rng.IntN(11)
		t := s.cursor
		prev := "-"
		for i := 0; i < n; i++ {
			pid := int(zipf.Next())
			var path string
			if rng.Bool(0.6) {
				path = sitemodel.ProductPath(pid)
			} else {
				path = sitemodel.PricePath(pid)
			}
			s.schedule(t, get(path, prev))
			prev = "-" // stealth kits do not bother with referers
			t = t.Add(rng.LogNormal(2500*time.Millisecond, 0.6))
		}
		s.cursor = t.Add(rng.Exp(sessionGap))
		return true
	}
	// No JavaScript runtime and near-zero patience: the first interstitial
	// ends the session and the botnet moves to the next exit.
	s.adapt(adaptivity{
		challengePatience: 1,
		rotate:            func() (string, string) { rotate(); return "", "" },
		blockCooldown:     10 * time.Minute,
		tarpitBackoff:     1,
	})
	s.prime()
	return s
}
