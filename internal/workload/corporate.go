package workload

import (
	"time"

	"divscrape/internal/clockwork"
	"divscrape/internal/detector"
	"divscrape/internal/sitemodel"
)

// newCorporateCrowd models a large office behind one enterprise NAT
// address: dozens of employees browsing the site from a single IP, with
// concentrated lunchtime rushes. Individually every request is human;
// collectively the address exceeds per-IP rate ceilings and presents many
// distinct User-Agents — precisely the conditions under which IP-keyed
// commercial detection false-positives. The behavioural detector, keying
// sessions by (IP, User-Agent), sees many small human sessions and stays
// quiet. This actor is the structural source of the commercial-style
// detector's false positives in the labelled experiments.
func newCorporateCrowd(id int, site *sitemodel.Site, rng *clockwork.Rand, ips *ipAllocator, start, end time.Time) *scripted {
	s := newScripted(id, detector.ArchetypeHuman, site, rng, start, end)
	s.ip = ips.corporate()

	zipf := clockwork.NewZipf(rng, 1.25, uint64(site.Products()))
	category := 0

	// Two rushes a day: late morning and lunchtime.
	rushHours := []int{12}
	rushIdx := 0
	day := start

	s.refill = func() bool {
		if day.After(s.end) {
			return false
		}
		rushStart := time.Date(day.Year(), day.Month(), day.Day(),
			rushHours[rushIdx], 15+rng.IntN(30), 0, 0, day.Location())
		rushIdx++
		if rushIdx >= len(rushHours) {
			rushIdx = 0
			day = day.AddDate(0, 0, 1)
		}
		if rushStart.After(s.end) {
			return false
		}
		if rushStart.After(s.cursor) {
			s.cursor = rushStart
		}
		rushEnd := s.cursor.Add(5 * time.Minute)
		t := s.cursor
		for t.Before(rushEnd) {
			// Aggregate ~2.2 req/s across the office; each request is a
			// different employee, hence its own User-Agent and page.
			t = t.Add(rng.Exp(450 * time.Millisecond))
			ua := pick(rng, currentBrowserUAs)
			var path, referer string
			roll := rng.Float64()
			switch {
			case roll < 0.25:
				path = sitemodel.HomePath
				referer = pick(rng, externalReferers)
			case roll < 0.5:
				category = rng.IntN(site.Categories())
				path = sitemodel.CategoryPath(category, rng.IntN(2))
				referer = sitemodel.HomePath
			case roll < 0.8:
				path = sitemodel.ProductPath(int(zipf.Next()))
				referer = sitemodel.CategoryPath(category, 0)
			case roll < 0.9:
				path = sitemodel.SearchPath(searchQuery(rng))
				referer = sitemodel.HomePath
			default:
				path = pick(rng, sitemodel.StaticAssets())
				referer = "-"
			}
			p := get(path, referer)
			p.ua = ua
			s.schedule(t, p)
		}
		s.cursor = rushEnd
		return len(s.queue) > 0
	}
	// Office browsers execute challenges; one employee solving clears the
	// shared NAT address for the whole crowd.
	s.adapt(adaptivity{solveChallenge: true})
	s.prime()
	return s
}
