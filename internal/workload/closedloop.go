package workload

import (
	"container/heap"
	"time"

	"divscrape/internal/mitigate"
	"divscrape/internal/sitemodel"
)

// Enforcement is the response plane's feedback to an actor for one emitted
// request: what the site did with it. In a closed-loop run the generator
// hands every event to the caller, the caller adjudicates and enforces,
// and the enforcement is fed back so adaptive actors can react — the arms
// race the robots.txt compliance studies document, simulated rather than
// assumed.
type Enforcement struct {
	// Action is what the enforcement point did with the request.
	Action mitigate.Action
	// Delay is the tarpit stall the client sat through (Tarpit only); a
	// synchronous client cannot issue its next request until the delayed
	// response returns.
	Delay time.Duration
}

// RunClosedLoop streams every event in timestamp order to respond and
// feeds the returned enforcement back into the generating actor. Static
// actors ignore it; adaptive ones back off when tarpitted, solve (or fail)
// challenges, and rotate network identities when blocked, reshaping the
// rest of the run. The loop is deterministic: given the same seed and the
// same (deterministic) respond function, the emitted stream is
// byte-identical across runs. With an all-Allow respond the stream equals
// the open-loop Run's exactly.
func (g *Generator) RunClosedLoop(respond func(Event) (Enforcement, error)) error {
	actors := buildActors(g.cfg, g.end)
	h := make(actorHeap, 0, len(actors))
	for _, a := range actors {
		if !a.done && !a.cursorTime().After(g.end) {
			h = append(h, a)
		}
	}
	heap.Init(&h)

	var ev Event
	for h.Len() > 0 {
		a := h[0]
		a.produce(&ev)
		enf, err := respond(ev)
		if err != nil {
			return err
		}
		if a.react != nil && !a.done {
			a.react(&ev, enf)
		}
		// The reaction may have rescheduled, truncated or extended the
		// queue, so the actor's liveness is recomputed rather than taken
		// from produce.
		if !a.done && a.fill() && !a.cursorTime().After(g.end) {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return nil
}

// Reaction primitives shared by the adaptive actors. All of them preserve
// the scripted invariants: queue times stay non-decreasing and at whole
// seconds, and the cursor never moves backwards.

// delayPending shifts every unconsumed queued request (and the planning
// cursor) forward by d — the client-side view of a stalled response: a
// synchronous client's whole pipeline slips.
func (s *scripted) delayPending(d time.Duration) {
	if d <= 0 {
		return
	}
	for i := s.qhead; i < len(s.queue); i++ {
		s.queue[i].at = s.queue[i].at.Add(d).Truncate(time.Second)
	}
	s.cursor = s.cursor.Add(d)
}

// abandonBatch drops the unconsumed queue and pushes the planning cursor
// to at least resume; the next refill plans the actor's comeback.
func (s *scripted) abandonBatch(resume time.Time) {
	s.queue = s.queue[:s.qhead]
	if resume.After(s.cursor) {
		s.cursor = resume
	}
}

// spliceChallengeSolve reroutes the actor through the challenge flow:
// fetch the script one second from now, post the solution a second later,
// and hold the already-planned queue back until the solution is in.
func (s *scripted) spliceChallengeSolve(now time.Time) {
	ct := now.Add(time.Second).Truncate(time.Second)
	vt := ct.Add(time.Second)
	rest := append([]planned(nil), s.queue[s.qhead:]...)
	s.queue = s.queue[:0]
	s.qhead = 0
	s.queue = append(s.queue,
		planned{at: ct, method: "GET", path: sitemodel.ChallengeScriptPath, referer: "-"},
		planned{at: vt, method: "POST", path: sitemodel.ChallengeVerifyPath, referer: "-"},
	)
	for _, p := range rest {
		if p.at.Before(vt) {
			p.at = vt
		}
		s.queue = append(s.queue, p)
	}
	if s.cursor.Before(vt) {
		s.cursor = vt
	}
}

// adaptivity parameterises an actor's reaction to enforcement.
type adaptivity struct {
	// solveChallenge marks a client with a working JavaScript runtime:
	// when challenged it fetches the script and posts the solution.
	solveChallenge bool
	// challengePatience is how many challenge interstitials a non-solving
	// client tolerates before treating the site as having blocked it.
	challengePatience int
	// rotate, when non-nil, gives the actor a fresh network identity
	// after a block. Either return may be empty to keep the current
	// value. Called lazily (never at construction), so open-loop streams
	// draw no extra randomness.
	rotate func() (ip, ua string)
	// blockCooldown is how long the actor goes quiet after being blocked
	// (or giving up on challenges) before its next batch.
	blockCooldown time.Duration
	// tarpitBackoff scales the self-imposed extra slowdown after a
	// tarpitted response, on top of the stall itself: cautious kits slow
	// down hard, brazen ones barely.
	tarpitBackoff float64
}

// adapt installs the reaction hook. Internal counters live in the closure,
// so each actor adapts independently.
func (s *scripted) adapt(a adaptivity) {
	pendingVerify := false
	failed := 0
	s.react = func(ev *Event, enf Enforcement) {
		if ev.Entry.Path == sitemodel.ChallengeVerifyPath {
			pendingVerify = false
		}
		switch enf.Action {
		case mitigate.Tarpit:
			extra := time.Duration(float64(enf.Delay) * a.tarpitBackoff)
			s.delayPending(enf.Delay + extra)
		case mitigate.Challenge:
			if a.solveChallenge {
				if !pendingVerify {
					s.spliceChallengeSolve(ev.Entry.Time)
					pendingVerify = true
				}
				return
			}
			failed++
			if failed > a.challengePatience {
				failed = 0
				s.evadeBlock(ev.Entry.Time, a)
			}
		case mitigate.Block:
			failed = 0
			s.evadeBlock(ev.Entry.Time, a)
		default: // Allow: the streak of denials is over.
			failed = 0
		}
	}
}

// evadeBlock is the shared give-up path: rotate identity if the actor
// can, then go quiet for the cooldown before the next batch.
func (s *scripted) evadeBlock(now time.Time, a adaptivity) {
	if a.rotate != nil {
		ip, ua := a.rotate()
		if ip != "" {
			s.ip = ip
		}
		if ua != "" {
			s.ua = ua
		}
	}
	s.abandonBatch(now.Add(a.blockCooldown))
}
