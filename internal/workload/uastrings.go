package workload

import "divscrape/internal/clockwork"

// User-Agent pools. The "current" pool matches the March 2018 plausibility
// window (uaparse.Era2018); the "stale" pool is what scraping kits ship —
// browser strings canned years earlier; the "tool" pool is undisguised
// automation.

var currentBrowserUAs = []string{
	"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36",
	"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/65.0.3325.146 Safari/537.36",
	"Mozilla/5.0 (Windows NT 6.1; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.140 Safari/537.36",
	"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_13_3) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.167 Safari/537.36",
	"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_13_3) AppleWebKit/604.5.6 (KHTML, like Gecko) Version/11.0.3 Safari/604.5.6",
	"Mozilla/5.0 (Windows NT 10.0; Win64; x64; rv:58.0) Gecko/20100101 Firefox/58.0",
	"Mozilla/5.0 (X11; Linux x86_64; rv:59.0) Gecko/20100101 Firefox/59.0",
	"Mozilla/5.0 (X11; Ubuntu; Linux x86_64; rv:58.0) Gecko/20100101 Firefox/58.0",
	"Mozilla/5.0 (Linux; Android 8.0.0; Pixel 2 Build/OPD1.170816.004) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.137 Mobile Safari/537.36",
	"Mozilla/5.0 (iPhone; CPU iPhone OS 11_2_6 like Mac OS X) AppleWebKit/604.5.6 (KHTML, like Gecko) Version/11.0 Mobile/15D100 Safari/604.1",
}

var staleBrowserUAs = []string{
	"Mozilla/5.0 (Windows NT 6.1; WOW64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/41.0.2228.0 Safari/537.36",
	"Mozilla/5.0 (Windows NT 6.1) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/35.0.1916.153 Safari/537.36",
	"Mozilla/5.0 (Windows NT 5.1; rv:31.0) Gecko/20100101 Firefox/31.0",
	"Mozilla/5.0 (X11; Linux i686; rv:24.0) Gecko/20100101 Firefox/24.0",
	"Mozilla/5.0 (Windows NT 6.3; WOW64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/39.0.2171.95 Safari/537.36",
	"Mozilla/4.0 (compatible; MSIE 7.0; Windows NT 5.1)",
}

var toolUAs = []string{
	"python-requests/2.18.4",
	"python-requests/2.13.0",
	"Python-urllib/3.6",
	"curl/7.58.0",
	"curl/7.47.0",
	"Wget/1.19.4 (linux-gnu)",
	"Go-http-client/1.1",
	"Scrapy/1.5.0 (+https://scrapy.org)",
	"Java/1.8.0_161",
	"okhttp/3.9.1",
	"libwww-perl/6.31",
}

var headlessUAs = []string{
	// Undisguised headless browsers (some kits do not bother overriding).
	"Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) HeadlessChrome/64.0.3282.186 Safari/537.36",
	"Mozilla/5.0 (Unknown; Linux x86_64) AppleWebKit/538.1 (KHTML, like Gecko) PhantomJS/2.1.1 Safari/538.1",
}

var searchBotUAs = []string{
	"Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)",
	"Mozilla/5.0 (compatible; bingbot/2.0; +http://www.bing.com/bingbot.htm)",
	"Mozilla/5.0 (compatible; YandexBot/3.0; +http://yandex.com/bots)",
}

var monitorUAs = []string{
	"Pingdom.com_bot_version_1.4_(http://www.pingdom.com/)",
	"UptimeRobot/2.0 (http://www.uptimerobot.com/)",
}

var partnerUAs = []string{
	"Java/1.8.0_151",
	"okhttp/3.8.1",
}

// pick returns a uniform element of pool.
func pick(rng *clockwork.Rand, pool []string) string {
	return pool[rng.IntN(len(pool))]
}

// externalReferers are the off-site referers humans arrive with.
var externalReferers = []string{
	"https://www.google.com/",
	"https://www.bing.com/",
	"https://duckduckgo.com/",
	"https://t.co/x8FqLmR2",
	"-",
}

// moreCurrentBrowserUAs extends the pool with additional era-plausible
// variants so shared NAT addresses present realistic User-Agent diversity.
var moreCurrentBrowserUAs = []string{
	"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/63.0.3239.132 Safari/537.36",
	"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/65.0.3325.162 Safari/537.36",
	"Mozilla/5.0 (Windows NT 6.1; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/63.0.3239.108 Safari/537.36",
	"Mozilla/5.0 (Windows NT 6.3; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.119 Safari/537.36",
	"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_12_6) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36",
	"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_11_6) AppleWebKit/603.3.8 (KHTML, like Gecko) Version/10.1.2 Safari/603.3.8",
	"Mozilla/5.0 (Windows NT 10.0; Win64; x64; rv:59.0) Gecko/20100101 Firefox/59.0",
	"Mozilla/5.0 (Windows NT 6.1; Win64; x64; rv:57.0) Gecko/20100101 Firefox/57.0",
	"Mozilla/5.0 (Macintosh; Intel Mac OS X 10.13; rv:58.0) Gecko/20100101 Firefox/58.0",
	"Mozilla/5.0 (X11; Fedora; Linux x86_64; rv:58.0) Gecko/20100101 Firefox/58.0",
	"Mozilla/5.0 (Linux; Android 7.0; SM-G930F Build/NRD90M) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.137 Mobile Safari/537.36",
	"Mozilla/5.0 (Linux; Android 6.0.1; SM-J700M Build/MMB29K) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/63.0.3239.111 Mobile Safari/537.36",
	"Mozilla/5.0 (iPhone; CPU iPhone OS 11_2_5 like Mac OS X) AppleWebKit/604.5.3 (KHTML, like Gecko) Version/11.0 Mobile/15D60 Safari/604.1",
	"Mozilla/5.0 (iPad; CPU OS 11_2_2 like Mac OS X) AppleWebKit/604.4.7 (KHTML, like Gecko) Version/11.0 Mobile/15C202 Safari/604.1",
	"Mozilla/5.0 (Windows NT 10.0; WOW64; rv:58.0) Gecko/20100101 Firefox/58.0",
	"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.167 Safari/537.36 Edge/16.16299",
}

func init() {
	currentBrowserUAs = append(currentBrowserUAs, moreCurrentBrowserUAs...)
}
