package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"divscrape/internal/detector"
	"divscrape/internal/logfmt"
)

// Label file format: one CSV row per log line, aligned by position:
//
//	seq,actor_id,archetype
//
// This sidecar is the ground truth the paper's authors were still
// producing by hand; here the generator emits it for free.

// LabelWriter streams the label sidecar for a generated log.
type LabelWriter struct {
	bw  *bufio.Writer
	seq uint64
}

// NewLabelWriter returns a writer emitting the CSV header immediately.
func NewLabelWriter(w io.Writer) (*LabelWriter, error) {
	bw := bufio.NewWriterSize(w, 128*1024)
	if _, err := bw.WriteString("seq,actor_id,archetype\n"); err != nil {
		return nil, fmt.Errorf("workload: write label header: %w", err)
	}
	return &LabelWriter{bw: bw}, nil
}

// Write appends one label row.
func (w *LabelWriter) Write(l detector.Label) error {
	var buf [64]byte
	row := strconv.AppendUint(buf[:0], w.seq, 10)
	row = append(row, ',')
	row = strconv.AppendInt(row, int64(l.ActorID), 10)
	row = append(row, ',')
	row = append(row, l.Archetype.String()...)
	row = append(row, '\n')
	if _, err := w.bw.Write(row); err != nil {
		return fmt.Errorf("workload: write label row: %w", err)
	}
	w.seq++
	return nil
}

// Flush drains buffered rows.
func (w *LabelWriter) Flush() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("workload: flush labels: %w", err)
	}
	return nil
}

// ReadLabels parses a label sidecar back into memory, validating the
// sequence numbering.
func ReadLabels(r io.Reader) ([]detector.Label, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []detector.Label
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if line == 1 {
			if text != "seq,actor_id,archetype" {
				return nil, fmt.Errorf("workload: labels line 1: unexpected header %q", text)
			}
			continue
		}
		if text == "" {
			continue
		}
		parts := strings.SplitN(text, ",", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("workload: labels line %d: want 3 fields, got %d", line, len(parts))
		}
		seq, err := strconv.ParseUint(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: labels line %d: bad seq %q", line, parts[0])
		}
		if seq != uint64(len(out)) {
			return nil, fmt.Errorf("workload: labels line %d: seq %d out of order (want %d)", line, seq, len(out))
		}
		actorID, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("workload: labels line %d: bad actor id %q", line, parts[1])
		}
		arch, ok := detector.ParseArchetype(parts[2])
		if !ok {
			return nil, fmt.Errorf("workload: labels line %d: unknown archetype %q", line, parts[2])
		}
		out = append(out, detector.Label{ActorID: actorID, Archetype: arch})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: read labels: %w", err)
	}
	return out, nil
}

// WriteDataset streams a full generation run to an access log and its
// label sidecar. It returns the number of requests written.
func WriteDataset(g *Generator, logW, labelW io.Writer) (uint64, error) {
	lw := logfmt.NewWriter(logW)
	labels, err := NewLabelWriter(labelW)
	if err != nil {
		return 0, err
	}
	var n uint64
	err = g.Run(func(ev Event) error {
		if err := lw.Write(&ev.Entry); err != nil {
			return err
		}
		if err := labels.Write(ev.Label); err != nil {
			return err
		}
		n++
		return nil
	})
	if err != nil {
		return n, err
	}
	if err := lw.Flush(); err != nil {
		return n, err
	}
	if err := labels.Flush(); err != nil {
		return n, err
	}
	return n, nil
}
