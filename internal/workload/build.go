package workload

import (
	"time"

	"divscrape/internal/clockwork"
)

// buildActors instantiates the profile's population. Actor ids are stable
// across runs: ordering and per-actor seeds depend only on the config.
func buildActors(cfg Config, end time.Time) []*scripted {
	profile := cfg.Profile
	actors := make([]*scripted, 0, profile.Total())
	id := 0

	// The allocator gets its own PRNG stream so address assignment does
	// not perturb actor behaviour streams.
	allocRng := clockwork.NewRand(cfg.Seed, 0x1F)
	natPool := profile.HumanVisitors / 3
	if natPool < 4 {
		natPool = 4
	}
	ips := newIPAllocator(allocRng, natPool, 8)

	rngFor := func(i int) *clockwork.Rand {
		return clockwork.NewRand(cfg.Seed, uint64(i)+0x100)
	}
	add := func(s *scripted) {
		actors = append(actors, s)
		id++
	}

	for i := 0; i < profile.HumanVisitors; i++ {
		marathon := float64(i) < float64(profile.HumanVisitors)*profile.MarathonShare
		add(newHuman(id, cfg.Site, rngFor(id), ips, cfg.Start, end, profile.HumanSessionsPerDay, marathon))
	}
	for i := 0; i < profile.CorporateCrowds; i++ {
		add(newCorporateCrowd(id, cfg.Site, rngFor(id), ips, cfg.Start, end))
	}
	for i := 0; i < profile.SearchCrawlers; i++ {
		add(newSearchCrawler(id, cfg.Site, rngFor(id), ips, cfg.Start, end, profile.CrawlDuty, profile.CrawlDelay))
	}
	for i := 0; i < profile.Monitors; i++ {
		add(newMonitor(id, cfg.Site, rngFor(id), ips, cfg.Start, end, profile.MonitorInterval))
	}
	for i := 0; i < profile.Partners; i++ {
		add(newPartner(id, cfg.Site, rngFor(id), ips, cfg.Start, end, profile.PartnerRate))
	}
	for i := 0; i < profile.NaiveScrapers; i++ {
		add(newNaiveScraper(id, cfg.Site, rngFor(id), ips, cfg.Start, end, profile.NaiveRate, profile.NaiveDuty))
	}
	for i := 0; i < profile.AggressiveScrapers; i++ {
		add(newAggressiveScraper(id, cfg.Site, rngFor(id), ips, cfg.Start, end, profile.AggressiveRate, profile.AggressiveDuty))
	}
	for i := 0; i < profile.InfraScrapers; i++ {
		add(newInfraScraper(id, cfg.Site, rngFor(id), ips, cfg.Start, end, profile.InfraRate, profile.InfraDuty))
	}
	for i := 0; i < profile.HeadlessScrapers; i++ {
		add(newHeadlessScraper(id, cfg.Site, rngFor(id), ips, cfg.Start, end, profile.HeadlessRate, profile.HeadlessDuty))
	}
	for i := 0; i < profile.StealthBots; i++ {
		add(newStealthBot(id, cfg.Site, rngFor(id), ips, cfg.Start, end, profile.StealthSessionGap))
	}
	return actors
}
