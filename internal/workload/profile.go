package workload

import (
	"fmt"
	"time"
)

// Profile is the traffic mix: how many actors of each archetype exist and
// how they pace themselves. All rates are per-actor. Populations are
// per-profile constants and total volume scales with Config.Duration, so
// the same profile generates a CI-sized slice or the full 8-day capture.
type Profile struct {
	// HumanVisitors is the recurring shopper population.
	HumanVisitors int
	// HumanSessionsPerDay is each visitor's mean session frequency.
	HumanSessionsPerDay float64
	// MarathonShare is the fraction of visitors who are marathon
	// comparison shoppers: long, fast, tab-driven sessions that sweep
	// product listings in order. Human and benign — and the structural
	// false-positive source for the behavioural detector.
	MarathonShare float64

	// CorporateCrowds is the number of large offices behind single NAT
	// addresses, the commercial-style detector's false-positive source.
	CorporateCrowds int

	// SearchCrawlers is the number of verified search-engine crawlers.
	SearchCrawlers int
	// CrawlDuty is the fraction of time a crawler spends crawling.
	CrawlDuty float64
	// CrawlDelay is the polite delay between crawler requests.
	CrawlDelay time.Duration

	// Monitors is the number of uptime monitors.
	Monitors int
	// MonitorInterval is the probe period.
	MonitorInterval time.Duration

	// Partners is the number of authenticated partner integrations.
	Partners int
	// PartnerRate is a partner's request rate during business hours.
	PartnerRate float64

	// NaiveScrapers / NaiveRate / NaiveDuty parameterise crude kits:
	// tool User-Agents from datacenter space at machine-steady pace.
	NaiveScrapers int
	NaiveRate     float64
	NaiveDuty     float64

	// AggressiveScrapers run high-rate catalogue sweeps behind canned
	// browser User-Agents, in short bursts.
	AggressiveScrapers int
	AggressiveRate     float64
	AggressiveDuty     float64

	// InfraScrapers operate from blocklisted ranges.
	InfraScrapers int
	InfraRate     float64
	InfraDuty     float64

	// HeadlessScrapers drive real headless browsers with clean spoofed
	// fingerprints: they solve the challenge, fetch assets and stay under
	// rate limits, but crawl the catalogue mechanically.
	HeadlessScrapers int
	HeadlessRate     float64
	HeadlessDuty     float64

	// StealthBots is the size of the distributed low-and-slow botnet;
	// each bot runs tiny sessions from rotating residential-proxy exits.
	StealthBots int
	// StealthSessionGap is a bot's mean pause between sessions.
	StealthSessionGap time.Duration
}

// CalibratedProfile returns the traffic mix tuned so that an 8-day run
// reproduces the shape of the paper's dataset: ~1.47M requests of which
// ~84% alert on both tools, with the Distil-only bucket several times the
// Arcane-only bucket (paper: 43,648 vs 9,305) and ~13% alerted by neither.
// The scale argument multiplies the actor populations for stress runs;
// pass 1.0 for the calibrated mix (volume is scaled via Config.Duration,
// not via this factor).
func CalibratedProfile(scale float64) Profile {
	if scale <= 0 {
		scale = 1
	}
	n := func(base int) int {
		v := int(float64(base)*scale + 0.5)
		if v < 1 {
			v = 1
		}
		return v
	}
	return Profile{
		HumanVisitors:       n(800),
		HumanSessionsPerDay: 1.2,
		MarathonShare:       0.004,

		CorporateCrowds: n(1),

		SearchCrawlers: n(2),
		CrawlDuty:      0.04,
		CrawlDelay:     5 * time.Second,

		Monitors:        n(2),
		MonitorInterval: 4 * time.Minute,

		Partners:    n(1),
		PartnerRate: 0.04,

		NaiveScrapers: n(4),
		NaiveRate:     0.9,
		NaiveDuty:     0.19,

		AggressiveScrapers: n(3),
		AggressiveRate:     6.0,
		AggressiveDuty:     0.025,

		InfraScrapers: n(2),
		InfraRate:     1.8,
		InfraDuty:     0.18,

		HeadlessScrapers: n(3),
		HeadlessRate:     0.7,
		HeadlessDuty:     0.006,

		StealthBots:       n(45),
		StealthSessionGap: 70 * time.Minute,
	}
}

func (p Profile) isZero() bool { return p == Profile{} }

func (p Profile) validate() error {
	check := func(name string, n int) error {
		if n < 0 {
			return fmt.Errorf("workload: %s must be non-negative, got %d", name, n)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		n    int
	}{
		{"HumanVisitors", p.HumanVisitors},
		{"CorporateCrowds", p.CorporateCrowds},
		{"SearchCrawlers", p.SearchCrawlers},
		{"Monitors", p.Monitors},
		{"Partners", p.Partners},
		{"NaiveScrapers", p.NaiveScrapers},
		{"AggressiveScrapers", p.AggressiveScrapers},
		{"InfraScrapers", p.InfraScrapers},
		{"HeadlessScrapers", p.HeadlessScrapers},
		{"StealthBots", p.StealthBots},
	} {
		if err := check(c.name, c.n); err != nil {
			return err
		}
	}
	if p.MarathonShare < 0 || p.MarathonShare > 1 {
		return fmt.Errorf("workload: MarathonShare must be in [0,1], got %g", p.MarathonShare)
	}
	for _, c := range []struct {
		name string
		duty float64
	}{
		{"CrawlDuty", p.CrawlDuty},
		{"NaiveDuty", p.NaiveDuty},
		{"AggressiveDuty", p.AggressiveDuty},
		{"InfraDuty", p.InfraDuty},
		{"HeadlessDuty", p.HeadlessDuty},
	} {
		if c.duty < 0 || c.duty > 1 {
			return fmt.Errorf("workload: %s must be in [0,1], got %g", c.name, c.duty)
		}
	}
	return nil
}

// Total returns the number of actors the profile creates.
func (p Profile) Total() int {
	return p.HumanVisitors + p.CorporateCrowds + p.SearchCrawlers +
		p.Monitors + p.Partners + p.NaiveScrapers + p.AggressiveScrapers +
		p.InfraScrapers + p.HeadlessScrapers + p.StealthBots
}
