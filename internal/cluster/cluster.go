// Package cluster scales the guard plane past one process: N detector
// nodes behind a consistent-hash router exchange periodic state deltas —
// mitigation-ladder digests, reputation-overlay entries, detector-session
// digests — as statecodec frames, so a scraper that rotates its traffic
// across the fleet still meets one coherent escalation ladder instead of
// N fresh ones.
//
// The robustness machinery is the point, not an afterthought:
//
//   - Every peer exchange gets a deadline (the transport's) plus
//     capped-exponential retry with jitter, through the same injectable
//     Sleep/Now/Rand discipline as internal/checkpoint — except nothing
//     here ever sleeps: retries are scheduled against the injected clock
//     and fire on later Ticks, so the whole plane is deterministic under
//     a simulated clock.
//   - A phi-accrual-style failure detector (phi.go) turns heartbeat
//     silence into suspect → dead transitions; routing walks the ring
//     past non-alive nodes, so a killed node's clients fail over without
//     dropping a request.
//   - Join/leave (SetPeers) re-partitions live: the ring is rebuilt and
//     every peer link is scheduled a full-state frame (snapshot → rehash
//     → ship → swap, generalising httpguard's single-process Rebalance
//     across processes).
//   - A per-node degraded policy governs quorum loss: the node keeps
//     deciding on local state, flags the transition as cluster-degraded
//     on the flight-recorder timeline, and under FailClosed freezes
//     ladder escalation (mitigate.SetEscalationFrozen) — decisions made
//     on state known to be stale must not convict anyone. On heal the
//     node unfreezes and anti-entropy reconciles by exchanging
//     full-state frames, whose last-writer-wins merges converge without
//     any further protocol.
//
// A Node is tick-driven and goroutine-free: call Tick on a cadence (the
// CLI runs a ticker; tests drive simulated time), Receive from the
// transport. All Backend calls happen outside the node lock's critical
// sends, and the node never blocks a request path — routing is a
// lock-guarded ring lookup, allocation-free.
package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"divscrape/internal/iprep"
	"divscrape/internal/mitigate"
	"divscrape/internal/trace"
)

// Backend is the replicable state plane a node replicates: implemented
// by httpguard.Guard across its shards, and by scrapedetect's follow
// pipeline over its single engine. Merge methods must be safe to call
// concurrently with the serving path (implementations take their own
// locks) and must be idempotent — the transport redelivers.
type Backend interface {
	// LadderDigestsSince streams mitigation-ladder digests for clients
	// active at or after since (zero = full state).
	LadderDigestsSince(since time.Time, fn func(mitigate.ClientDigest))
	// MergeLadderDigest folds a replicated digest in (last-writer-wins);
	// reports whether it was applied.
	MergeLadderDigest(d mitigate.ClientDigest) bool
	// OverlayEntries streams the live reputation-overlay entries.
	OverlayEntries(fn func(iprep.TempEntry))
	// MergeOverlayEntry folds a replicated overlay entry in
	// (longest-lease-wins); reports whether it was applied.
	MergeOverlayEntry(e iprep.TempEntry) bool
	// SessionDigestsSince streams detector-session digests for sessions
	// active at or after since.
	SessionDigestsSince(since time.Time, fn func(SessionDigest))
	// SetEscalationFrozen switches ladder escalation off (and back on) —
	// the fail-closed degraded response to quorum loss.
	SetEscalationFrozen(frozen bool)
}

// DegradedPolicy selects what a node does while it cannot reach a quorum
// of peers — the cluster face of httpguard's fail-open/fail-closed
// semantics.
type DegradedPolicy uint8

const (
	// FailOpen keeps enforcing on local state unchanged: detection
	// continues, escalation continues, replication catches up on heal.
	FailOpen DegradedPolicy = iota
	// FailClosed keeps deciding on local state but freezes ladder
	// escalation until quorum returns: a minority node must not convict
	// clients on evidence it knows is partial.
	FailClosed
)

// String returns the policy's stable name.
func (p DegradedPolicy) String() string {
	if p == FailClosed {
		return "fail-closed"
	}
	return "fail-open"
}

// Event kinds emitted onto the flight-recorder timeline and OnEvent.
const (
	EventPeerSuspect = "cluster-peer-suspect"
	EventPeerDead    = "cluster-peer-dead"
	EventPeerAlive   = "cluster-peer-alive"
	EventDegraded    = "cluster-degraded"
	EventHeal        = "cluster-heal"
	EventRepartition = "cluster-repartition"
)

// Event is one membership or degradation transition.
type Event struct {
	// Time is the node clock when the transition was observed.
	Time time.Time
	// Kind is one of the Event* constants.
	Kind string
	// Peer names the peer involved (empty for node-level events).
	Peer string
	// Detail is a human-readable elaboration.
	Detail string
}

// Config parameterises a Node.
type Config struct {
	// ID is this node's cluster-unique identifier (the HTTP transport
	// uses listen addresses as IDs). Required.
	ID string
	// Peers lists the other nodes' IDs. May be reshaped later with
	// SetPeers.
	Peers []string
	// Backend is the replicable state plane. Required.
	Backend Backend
	// Transport moves frames to peers. Required.
	Transport Transport
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
	// Rand is the jitter source in [0,1), injectable and seedable like
	// Now; defaults to math/rand.Float64.
	Rand func() float64
	// DeltaInterval is the cadence of delta frames (doubling as the
	// heartbeat interval — an empty delta is a heartbeat). Default 1s.
	DeltaInterval time.Duration
	// SuspectPhi and DeadPhi are the failure-detector thresholds; zero
	// takes the documented defaults (4 and 8 expected intervals).
	SuspectPhi, DeadPhi float64
	// Degraded selects the quorum-loss behaviour. Default FailOpen.
	Degraded DegradedPolicy
	// Quorum is the minimum live node count (self included) to stay out
	// of degraded mode; zero selects a strict majority of the full
	// membership.
	Quorum int
	// SendRetries is how many retry attempts one frame gets after its
	// first failed send before being dropped (the next frame re-covers
	// its window). Default 4.
	SendRetries int
	// SendBackoff is the pause before the first retry; it doubles per
	// attempt. Default 100ms.
	SendBackoff time.Duration
	// MaxSendBackoff caps the doubling. Default 2s.
	MaxSendBackoff time.Duration
	// Jitter spreads each backoff pause by ±this fraction so fleet-wide
	// retries do not synchronise; zero selects 0.2, negative disables.
	Jitter float64
	// Trace, when non-nil, receives membership and degradation events on
	// the flight-recorder timeline.
	Trace *trace.Recorder
	// OnEvent, if set, observes every membership/degradation transition.
	// Called synchronously under the node lock: keep it fast and never
	// call back into the node.
	OnEvent func(Event)
}

// peerLink is the per-peer replication state: the acknowledged
// watermark, the pending frame with its retry schedule, and the last
// classified liveness for transition detection.
type peerLink struct {
	id string
	// watermark is the since-cursor delta builds resume from, kept in
	// the backend's own stamp domain: the newest LastSeen actually
	// shipped in a delivered frame. Backend stamps are event time in
	// follow mode (log entry timestamps that systematically lag the
	// node's wall clock), so the cursor must never touch the node
	// clock — advancing it to a build time would permanently exclude
	// state stamped earlier than the build but applied later. The
	// DigestsSince streams are inclusive at the boundary, so a stamp
	// equal to the watermark re-ships (merges are idempotent) rather
	// than falling in the gap. Zero forces a full-state frame.
	watermark time.Time
	// pending is the encoded frame awaiting (re)send; builtAt is its
	// node-clock build identity, frameMark the watermark a successful
	// delivery advances to (the newest backend stamp in the frame).
	pending   []byte
	builtAt   time.Time
	frameMark time.Time
	// attempts counts failed sends of the pending frame; nextTry and
	// backoff schedule the retry against the injected clock.
	attempts int
	backoff  time.Duration
	nextTry  time.Time
	// state is the last classified liveness, for edge-triggered events.
	state PeerState
	// lastApplied is the sender stamp of the newest frame merged from
	// this peer — the replica freshness behind the reconcile-lag gauge.
	lastApplied time.Time
}

// Node is one cluster member. Construct with New; drive with Tick and
// Receive. Safe for concurrent use.
type Node struct {
	cfg Config

	mu      sync.Mutex
	fd      *FailureDetector
	peers   map[string]*peerLink
	ring    *Ring
	avoid   map[string]bool // peers routed around (suspect or dead)
	skipFn  func(string) bool
	seq       uint64
	started   bool
	lastBuild time.Time
	degrade   bool

	// Lock-free observability surface (metrics.go reads these).
	deltasSent     atomic.Uint64
	deltasRetried  atomic.Uint64
	deltasDropped  atomic.Uint64
	deltasReceived atomic.Uint64
	entriesApplied atomic.Uint64
	entriesStale   atomic.Uint64
	badFrames      atomic.Uint64
	repartitions   atomic.Uint64
	degradedCount  atomic.Uint64
	peersAlive     atomic.Int64
	peersSuspect   atomic.Int64
	peersDead      atomic.Int64
	degradedGauge  atomic.Bool
	reconcileLagNs atomic.Int64
}

// New validates cfg and builds a node. The node is passive until the
// caller starts ticking it.
func New(cfg Config) (*Node, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("cluster: node needs an ID")
	}
	if cfg.Backend == nil {
		return nil, fmt.Errorf("cluster: node needs a Backend")
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("cluster: node needs a Transport")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Float64
	}
	if cfg.DeltaInterval <= 0 {
		cfg.DeltaInterval = time.Second
	}
	if cfg.SendRetries <= 0 {
		cfg.SendRetries = 4
	}
	if cfg.SendBackoff <= 0 {
		cfg.SendBackoff = 100 * time.Millisecond
	}
	if cfg.MaxSendBackoff <= 0 {
		cfg.MaxSendBackoff = 2 * time.Second
	}
	switch {
	case cfg.Jitter == 0:
		cfg.Jitter = 0.2
	case cfg.Jitter < 0:
		cfg.Jitter = 0
	}
	n := &Node{
		cfg:   cfg,
		fd:    NewFailureDetector(cfg.DeltaInterval, cfg.SuspectPhi, cfg.DeadPhi),
		peers: make(map[string]*peerLink),
		avoid: make(map[string]bool),
	}
	// The skip predicate is allocated once: routing must stay
	// allocation-free on the request path.
	n.skipFn = func(id string) bool { return n.avoid[id] }
	for _, p := range cfg.Peers {
		if p != "" && p != cfg.ID {
			n.peers[p] = &peerLink{id: p}
		}
	}
	n.rebuildRingLocked()
	return n, nil
}

// rebuildRingLocked recomputes the ring over self + peers.
func (n *Node) rebuildRingLocked() {
	members := make([]string, 0, len(n.peers)+1)
	members = append(members, n.cfg.ID)
	for id := range n.peers {
		members = append(members, id)
	}
	n.ring = NewRing(members)
}

// ID returns the node's cluster identifier.
func (n *Node) ID() string { return n.cfg.ID }

// Now returns the node's clock reading.
func (n *Node) Now() time.Time { return n.cfg.Now() }

// Degraded reports whether the node is currently below quorum.
func (n *Node) Degraded() bool { return n.degradedGauge.Load() }

// quorum returns the live-node floor: the configured value, or a strict
// majority of the full membership.
func (n *Node) quorum() int {
	if n.cfg.Quorum > 0 {
		return n.cfg.Quorum
	}
	return (len(n.peers)+1)/2 + 1
}

// Route returns the node that owns ip, walking the ring past peers the
// failure detector is avoiding (suspect or dead). fellBack reports that
// the primary owner was skipped. Allocation-free.
func (n *Node) Route(ip uint32) (owner string, fellBack bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring.OwnerSkip(ip, n.skipFn)
}

// emitLocked publishes a transition event to the trace timeline and the
// OnEvent observer. Caller holds n.mu.
func (n *Node) emitLocked(ev Event) {
	if n.cfg.Trace != nil {
		n.cfg.Trace.AddEvent(trace.Event{
			Time:   ev.Time,
			Kind:   ev.Kind,
			Client: ev.Peer,
			Detail: ev.Detail,
		})
	}
	if n.cfg.OnEvent != nil {
		n.cfg.OnEvent(ev)
	}
}

// Tick advances the node to now: classifies peers, manages the degraded
// state, builds due delta frames and runs the send/retry schedule. Call
// on a cadence of roughly DeltaInterval/4 or finer so retries and phi
// transitions land promptly; Tick is cheap when nothing is due.
func (n *Node) Tick(now time.Time) {
	n.mu.Lock()
	if !n.started {
		n.started = true
		for id := range n.peers {
			n.fd.Register(id, now)
		}
	}
	n.classifyPeersLocked(now)
	n.updateDegradedLocked(now)
	n.buildFramesLocked(now)
	jobs := n.dueSendsLocked(now)
	n.updateLagLocked(now)
	n.mu.Unlock()

	if len(jobs) == 0 {
		return
	}
	// Sends run outside the node lock — a synchronous in-process
	// transport delivers straight into the peer's Receive, which takes
	// the peer's lock, so holding ours across that invites deadlock —
	// and concurrently across peers: one black-holed (non-refusing)
	// peer must cost at most one transport timeout per tick, not one
	// per later peer in the slice, or it starves heartbeats to healthy
	// peers until they falsely suspect this node. Tick still joins all
	// sends before settling so the retry schedule stays deterministic
	// under an injected clock.
	results := make([]error, len(jobs))
	if len(jobs) == 1 {
		results[0] = n.cfg.Transport.Send(jobs[0].to, jobs[0].frame)
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, maxConcurrentSends)
		for i := range jobs {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				results[i] = n.cfg.Transport.Send(jobs[i].to, jobs[i].frame)
				<-sem
			}(i)
		}
		wg.Wait()
	}
	n.mu.Lock()
	for i, j := range jobs {
		n.settleSendLocked(j, results[i], now)
	}
	n.mu.Unlock()
}

// classifyPeersLocked refreshes every peer's liveness, emits transition
// events, maintains the routing avoid-set and schedules anti-entropy for
// peers coming back from the dead.
func (n *Node) classifyPeersLocked(now time.Time) {
	var alive, suspect, dead int64
	for id, link := range n.peers {
		st := n.fd.State(id, now)
		if st != link.state {
			switch st {
			case Suspect:
				n.emitLocked(Event{Time: now, Kind: EventPeerSuspect, Peer: id,
					Detail: fmt.Sprintf("phi %.1f", n.fd.Phi(id, now))})
			case Dead:
				n.emitLocked(Event{Time: now, Kind: EventPeerDead, Peer: id,
					Detail: fmt.Sprintf("phi %.1f", n.fd.Phi(id, now))})
			case Alive:
				n.emitLocked(Event{Time: now, Kind: EventPeerAlive, Peer: id,
					Detail: "heartbeats resumed"})
				// The peer missed an unknown window: reconcile by
				// scheduling a fresh full-state frame.
				link.watermark = time.Time{}
				link.pending = nil
				link.attempts = 0
			}
			link.state = st
		}
		switch st {
		case Alive:
			alive++
			delete(n.avoid, id)
		case Suspect:
			suspect++
			n.avoid[id] = true
		case Dead:
			dead++
			n.avoid[id] = true
		}
	}
	n.peersAlive.Store(alive)
	n.peersSuspect.Store(suspect)
	n.peersDead.Store(dead)
}

// updateDegradedLocked applies the quorum rule: self plus every peer not
// classified Dead counts as reachable membership.
func (n *Node) updateDegradedLocked(now time.Time) {
	reachable := 1 + int(n.peersAlive.Load()) + int(n.peersSuspect.Load())
	below := reachable < n.quorum()
	if below == n.degrade {
		return
	}
	n.degrade = below
	n.degradedGauge.Store(below)
	if below {
		n.degradedCount.Add(1)
		n.emitLocked(Event{Time: now, Kind: EventDegraded,
			Detail: fmt.Sprintf("%d of %d nodes reachable, quorum %d, policy %s",
				reachable, len(n.peers)+1, n.quorum(), n.cfg.Degraded)})
		if n.cfg.Degraded == FailClosed {
			n.cfg.Backend.SetEscalationFrozen(true)
		}
		return
	}
	n.emitLocked(Event{Time: now, Kind: EventHeal,
		Detail: fmt.Sprintf("%d of %d nodes reachable", reachable, len(n.peers)+1)})
	if n.cfg.Degraded == FailClosed {
		n.cfg.Backend.SetEscalationFrozen(false)
	}
	// Anti-entropy on heal: everything the node decided alone must reach
	// the peers (and vice versa — their frames arrive by symmetry), so
	// every link restarts from a full-state frame.
	for _, link := range n.peers {
		link.watermark = time.Time{}
		link.pending = nil
		link.attempts = 0
	}
}

// buildFramesLocked builds one delta per peer when the cadence is due.
// A peer still retrying its previous frame keeps it: the watermark only
// advances on delivery, so the next build after a drop re-covers the
// whole missed window — redelivery is free because merges are
// idempotent.
func (n *Node) buildFramesLocked(now time.Time) {
	due := false
	for _, link := range n.peers {
		if link.pending == nil {
			due = true
			break
		}
	}
	if !due || len(n.peers) == 0 {
		return
	}
	// Cadence: first build fires immediately (the join heartbeat), then
	// every DeltaInterval.
	if !n.lastBuildDueLocked(now) {
		return
	}
	n.seq++
	for _, link := range n.peers {
		if link.pending != nil {
			continue
		}
		frame, mark, err := n.encodeDeltaLocked(link, now)
		if err != nil {
			// An unserialisable backend is a programming error surfaced
			// by tests; skip the frame rather than wedging the link.
			continue
		}
		link.pending = frame
		link.builtAt = now
		link.frameMark = mark
		link.attempts = 0
		link.backoff = n.cfg.SendBackoff
		link.nextTry = now
	}
	n.lastBuild = now
}

// encodeDeltaLocked builds the frame for one peer from its watermark.
// The returned mark is the newest backend stamp included — what the
// watermark advances to once this frame is delivered. It stays in the
// backend's time domain (never the node clock): an empty frame leaves
// the cursor where it was, and a frame carrying state moves it exactly
// to the edge of what was shipped.
func (n *Node) encodeDeltaLocked(link *peerLink, now time.Time) ([]byte, time.Time, error) {
	d := &Delta{
		From:         n.cfg.ID,
		Seq:          n.seq,
		SentUnixNano: now.UnixNano(),
		Kind:         DeltaIncremental,
	}
	if link.watermark.IsZero() {
		d.Kind = DeltaFull
	}
	mark := link.watermark
	b := n.cfg.Backend
	b.LadderDigestsSince(link.watermark, func(cd mitigate.ClientDigest) {
		d.Ladders = append(d.Ladders, cd)
		if cd.LastSeen.After(mark) {
			mark = cd.LastSeen
		}
	})
	b.OverlayEntries(func(e iprep.TempEntry) {
		d.Overlay = append(d.Overlay, e)
	})
	b.SessionDigestsSince(link.watermark, func(s SessionDigest) {
		d.Sessions = append(d.Sessions, s)
		if last := time.Unix(0, s.LastSeen); last.After(mark) {
			mark = last
		}
	})
	frame, err := d.EncodeFrame()
	return frame, mark, err
}

// maxConcurrentSends bounds the per-tick send fan-out: enough that no
// realistic peer count serialises behind a stuck transport call, small
// enough that a large membership cannot spawn a goroutine storm.
const maxConcurrentSends = 16

// sendJob is one due frame transmission, executed outside the lock.
type sendJob struct {
	to      string
	frame   []byte
	builtAt time.Time
}

// dueSendsLocked collects the frames whose (re)try time has arrived.
func (n *Node) dueSendsLocked(now time.Time) []sendJob {
	var jobs []sendJob
	for _, link := range n.peers {
		if link.pending != nil && !now.Before(link.nextTry) {
			jobs = append(jobs, sendJob{to: link.id, frame: link.pending, builtAt: link.builtAt})
		}
	}
	return jobs
}

// settleSendLocked folds one send outcome back into the link: success
// advances the watermark; failure schedules a jittered capped-exponential
// retry, and exhaustion drops the frame (the next build re-covers its
// window from the unchanged watermark).
func (n *Node) settleSendLocked(j sendJob, err error, now time.Time) {
	link := n.peers[j.to]
	if link == nil || link.builtAt != j.builtAt || link.pending == nil {
		return // membership or frame changed underneath the send
	}
	if err == nil {
		link.pending = nil
		link.watermark = link.frameMark
		n.deltasSent.Add(1)
		return
	}
	link.attempts++
	if link.attempts > n.cfg.SendRetries {
		link.pending = nil
		n.deltasDropped.Add(1)
		return
	}
	n.deltasRetried.Add(1)
	link.nextTry = now.Add(n.jitter(link.backoff))
	if link.backoff *= 2; link.backoff > n.cfg.MaxSendBackoff {
		link.backoff = n.cfg.MaxSendBackoff
	}
}

// jitter spreads d by ±cfg.Jitter using the injected source.
func (n *Node) jitter(d time.Duration) time.Duration {
	j := n.cfg.Jitter
	if j <= 0 {
		return d
	}
	return time.Duration(float64(d) * (1 - j + 2*j*n.cfg.Rand()))
}

// updateLagLocked refreshes the reconcile-lag gauge: the staleness of
// the oldest replica among reachable peers.
func (n *Node) updateLagLocked(now time.Time) {
	var lag time.Duration
	for _, link := range n.peers {
		if link.state == Dead {
			continue
		}
		if link.lastApplied.IsZero() {
			continue
		}
		if l := now.Sub(link.lastApplied); l > lag {
			lag = l
		}
	}
	n.reconcileLagNs.Store(int64(lag))
}

// Receive decodes and merges one frame from a peer. Any frame — however
// empty — is a heartbeat. Hostile or torn frames fail with the codec's
// typed errors and are counted, never merged, and never panic. Frames
// from unknown senders are counted and dropped.
func (n *Node) Receive(frame []byte) error {
	d, err := DecodeFrame(frame)
	if err != nil {
		n.badFrames.Add(1)
		return err
	}
	now := n.cfg.Now()
	n.mu.Lock()
	link := n.peers[d.From]
	if link == nil {
		n.mu.Unlock()
		n.badFrames.Add(1)
		return fmt.Errorf("cluster: frame from unknown peer %q", d.From)
	}
	n.fd.Heartbeat(d.From, now)
	sent := time.Unix(0, d.SentUnixNano)
	if sent.After(link.lastApplied) {
		link.lastApplied = sent
	}
	n.mu.Unlock()

	// Merges run outside the node lock: the backend serialises itself,
	// and a merge storm must not stall ticks or routing.
	n.deltasReceived.Add(1)
	var applied, stale uint64
	for _, l := range d.Ladders {
		if n.cfg.Backend.MergeLadderDigest(l) {
			applied++
		} else {
			stale++
		}
	}
	for _, e := range d.Overlay {
		if n.cfg.Backend.MergeOverlayEntry(e) {
			applied++
		} else {
			stale++
		}
	}
	n.entriesApplied.Add(applied)
	n.entriesStale.Add(stale)
	return nil
}

// SetPeers reshapes the membership to peers (self excluded
// automatically) and live-re-partitions: the ring is rebuilt, departed
// links are forgotten, and every remaining link is scheduled a
// full-state frame so reassigned clients' ladder state ships to their
// new owners before the next delta cadence.
func (n *Node) SetPeers(peers []string, now time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	next := make(map[string]bool, len(peers))
	for _, p := range peers {
		if p != "" && p != n.cfg.ID {
			next[p] = true
		}
	}
	changed := false
	for id := range n.peers {
		if !next[id] {
			delete(n.peers, id)
			n.fd.Forget(id)
			delete(n.avoid, id)
			changed = true
		}
	}
	for id := range next {
		if n.peers[id] == nil {
			n.peers[id] = &peerLink{id: id}
			if n.started {
				n.fd.Register(id, now)
			}
			changed = true
		}
	}
	if !changed {
		return
	}
	n.rebuildRingLocked()
	n.repartitions.Add(1)
	n.emitLocked(Event{Time: now, Kind: EventRepartition,
		Detail: fmt.Sprintf("membership now %d nodes", len(n.peers)+1)})
	// Ship: every link restarts from a full-state frame, so the new
	// partition's owners hold the moved clients' ladders.
	for _, link := range n.peers {
		link.watermark = time.Time{}
		link.pending = nil
		link.attempts = 0
	}
}

// lastBuild tracking: the node builds at most one delta wave per
// DeltaInterval.
func (n *Node) lastBuildDueLocked(now time.Time) bool {
	if n.lastBuild.IsZero() {
		return true
	}
	return now.Sub(n.lastBuild) >= n.cfg.DeltaInterval
}

// PeerStatus is one peer's liveness and replication state as reported by
// Status.
type PeerStatus struct {
	ID          string        `json:"id"`
	State       string        `json:"state"`
	Phi         float64       `json:"phi"`
	LastHeard   time.Time     `json:"last_heard"`
	LastApplied time.Time     `json:"last_applied,omitzero"`
	Watermark   time.Time     `json:"watermark,omitzero"`
	Pending     bool          `json:"pending"`
	Attempts    int           `json:"attempts,omitempty"`
	Backoff     time.Duration `json:"-"`
}

// Status is a point-in-time snapshot of the node's cluster health,
// rendered into /debug/divscrape/health.
type Status struct {
	ID             string        `json:"id"`
	Policy         string        `json:"degraded_policy"`
	Degraded       bool          `json:"degraded"`
	Quorum         int           `json:"quorum"`
	Reachable      int           `json:"reachable"`
	Members        int           `json:"members"`
	Peers          []PeerStatus  `json:"peers"`
	DeltasSent     uint64        `json:"deltas_sent"`
	DeltasRetried  uint64        `json:"deltas_retried"`
	DeltasDropped  uint64        `json:"deltas_dropped"`
	DeltasReceived uint64        `json:"deltas_received"`
	EntriesApplied uint64        `json:"entries_applied"`
	EntriesStale   uint64        `json:"entries_stale"`
	BadFrames      uint64        `json:"bad_frames"`
	Repartitions   uint64        `json:"repartitions"`
	ReconcileLag   time.Duration `json:"reconcile_lag_ns"`
}

// Status snapshots the node at its clock's now.
func (n *Node) Status() Status {
	now := n.cfg.Now()
	n.mu.Lock()
	s := Status{
		ID:             n.cfg.ID,
		Policy:         n.cfg.Degraded.String(),
		Degraded:       n.degrade,
		Quorum:         n.quorum(),
		Members:        len(n.peers) + 1,
		DeltasSent:     n.deltasSent.Load(),
		DeltasRetried:  n.deltasRetried.Load(),
		DeltasDropped:  n.deltasDropped.Load(),
		DeltasReceived: n.deltasReceived.Load(),
		EntriesApplied: n.entriesApplied.Load(),
		EntriesStale:   n.entriesStale.Load(),
		BadFrames:      n.badFrames.Load(),
		Repartitions:   n.repartitions.Load(),
		ReconcileLag:   time.Duration(n.reconcileLagNs.Load()),
	}
	s.Reachable = 1
	s.Peers = make([]PeerStatus, 0, len(n.peers))
	for id, link := range n.peers {
		st := n.fd.State(id, now)
		if st != Dead {
			s.Reachable++
		}
		s.Peers = append(s.Peers, PeerStatus{
			ID:          id,
			State:       st.String(),
			Phi:         n.fd.Phi(id, now),
			LastHeard:   n.fd.LastHeard(id),
			LastApplied: link.lastApplied,
			Watermark:   link.watermark,
			Pending:     link.pending != nil,
			Attempts:    link.attempts,
			Backoff:     link.backoff,
		})
	}
	n.mu.Unlock()
	sortPeerStatus(s.Peers)
	return s
}

func sortPeerStatus(ps []PeerStatus) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].ID < ps[j-1].ID; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
