package cluster_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"divscrape/internal/cluster"
	"divscrape/internal/iprep"
	"divscrape/internal/mitigate"
	"divscrape/internal/statecodec"
)

// memBackend is a minimal in-memory state plane with the same merge
// semantics as the real ones: last-writer-wins ladders, longest-lease
// overlay.
type memBackend struct {
	mu      sync.Mutex
	ladders map[string]mitigate.ClientDigest
	overlay map[string]iprep.TempEntry
	frozen  bool
	freezes int
}

func newMemBackend() *memBackend {
	return &memBackend{
		ladders: make(map[string]mitigate.ClientDigest),
		overlay: make(map[string]iprep.TempEntry),
	}
}

func (b *memBackend) LadderDigestsSince(since time.Time, fn func(mitigate.ClientDigest)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, d := range b.ladders {
		if !d.LastSeen.Before(since) {
			fn(d)
		}
	}
}

func (b *memBackend) MergeLadderDigest(d mitigate.ClientDigest) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	cur, ok := b.ladders[d.Key]
	if ok && !d.LastSeen.After(cur.LastSeen) {
		return false
	}
	b.ladders[d.Key] = d
	return true
}

func (b *memBackend) OverlayEntries(fn func(iprep.TempEntry)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, e := range b.overlay {
		fn(e)
	}
}

func (b *memBackend) MergeOverlayEntry(e iprep.TempEntry) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	k := fmt.Sprintf("%d/%d", e.Prefix.IP, e.Prefix.Bits)
	cur, ok := b.overlay[k]
	if ok && !e.Until.After(cur.Until) {
		return false
	}
	b.overlay[k] = e
	return true
}

func (b *memBackend) SessionDigestsSince(time.Time, func(cluster.SessionDigest)) {}

func (b *memBackend) SetEscalationFrozen(frozen bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.frozen = frozen
	if frozen {
		b.freezes++
	}
}

func (b *memBackend) isFrozen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.frozen
}

func (b *memBackend) ladder(key string) (mitigate.ClientDigest, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	d, ok := b.ladders[key]
	return d, ok
}

func (b *memBackend) touch(key string, level mitigate.Action, at time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ladders[key] = mitigate.ClientDigest{Key: key, Level: level, LastSeen: at}
}

// simClock is the injected cluster clock.
type simClock struct {
	mu sync.Mutex
	t  time.Time
}

func newSimClock() *simClock {
	return &simClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *simClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *simClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}

// failTransport fails every send and records when each was attempted.
type failTransport struct {
	mu       sync.Mutex
	clock    *simClock
	base     time.Time
	attempts []time.Duration
}

func (t *failTransport) Send(string, []byte) error {
	t.mu.Lock()
	t.attempts = append(t.attempts, t.clock.Now().Sub(t.base))
	t.mu.Unlock()
	return errors.New("injected send failure")
}

func TestNodeRetryBackoffJitteredSchedule(t *testing.T) {
	clock := newSimClock()
	tr := &failTransport{clock: clock, base: clock.Now()}
	n, err := cluster.New(cluster.Config{
		ID:             "a",
		Peers:          []string{"b"},
		Backend:        newMemBackend(),
		Transport:      tr,
		Now:            clock.Now,
		Rand:           func() float64 { return 0.25 }, // jitter factor 0.9 exactly
		DeltaInterval:  100 * time.Millisecond,
		SendRetries:    3,
		SendBackoff:    10 * time.Millisecond,
		MaxSendBackoff: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tick every millisecond for one delta interval. The frame is built
	// and attempted at t=0; with Rand pinned at 0.25 and Jitter 0.2 every
	// backoff is scaled by 0.9: 10ms→9, 20ms→18, 40ms (capped)→36.
	n.Tick(clock.Now())
	for i := 0; i < 99; i++ {
		n.Tick(clock.Advance(time.Millisecond))
	}
	want := []time.Duration{0, 9 * time.Millisecond, 27 * time.Millisecond, 63 * time.Millisecond}
	tr.mu.Lock()
	got := append([]time.Duration(nil), tr.attempts...)
	tr.mu.Unlock()
	if len(got) != len(want) {
		t.Fatalf("attempts %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("attempt %d at %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
	s := n.Status()
	if s.DeltasRetried != 3 || s.DeltasDropped != 1 || s.DeltasSent != 0 {
		t.Fatalf("retried %d dropped %d sent %d, want 3/1/0",
			s.DeltasRetried, s.DeltasDropped, s.DeltasSent)
	}
	// The next cadence builds a fresh frame covering the dropped window.
	n.Tick(clock.Advance(time.Millisecond))
	tr.mu.Lock()
	count := len(tr.attempts)
	last := tr.attempts[count-1]
	tr.mu.Unlock()
	if count != 5 || last != 100*time.Millisecond {
		t.Fatalf("after drop: %d attempts, last at %v", count, last)
	}
}

// cliqueHarness builds K nodes on a MemNetwork sharing one clock.
type cliqueHarness struct {
	clock    *simClock
	net      *cluster.MemNetwork
	nodes    map[string]*cluster.Node
	backends map[string]*memBackend
	events   *eventLog
	downed   map[string]bool
}

type eventLog struct {
	mu     sync.Mutex
	events []cluster.Event
}

func (l *eventLog) add(ev cluster.Event) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

func (l *eventLog) kinds(node string) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []string
	for _, ev := range l.events {
		out = append(out, ev.Kind)
	}
	return out
}

func (l *eventLog) has(kind string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ev := range l.events {
		if ev.Kind == kind {
			return true
		}
	}
	return false
}

func newClique(t *testing.T, ids []string, policy func(id string) cluster.DegradedPolicy) *cliqueHarness {
	t.Helper()
	h := &cliqueHarness{
		clock:    newSimClock(),
		net:      cluster.NewMemNetwork(),
		nodes:    make(map[string]*cluster.Node),
		backends: make(map[string]*memBackend),
		events:   &eventLog{},
		downed:   make(map[string]bool),
	}
	// The MemNetwork endpoint needs the node and the node needs a
	// transport at construction — a forwarding shim breaks the cycle.
	for _, id := range ids {
		h.backends[id] = newMemBackend()
	}
	for _, id := range ids {
		peers := make([]string, 0, len(ids)-1)
		for _, p := range ids {
			if p != id {
				peers = append(peers, p)
			}
		}
		pol := cluster.FailOpen
		if policy != nil {
			pol = policy(id)
		}
		shim := &lateTransport{}
		n, err := cluster.New(cluster.Config{
			ID:            id,
			Peers:         peers,
			Backend:       h.backends[id],
			Transport:     shim,
			Now:           h.clock.Now,
			Rand:          func() float64 { return 0.5 },
			DeltaInterval: 100 * time.Millisecond,
			SendRetries:   2,
			SendBackoff:   20 * time.Millisecond,
			Degraded:      pol,
			OnEvent:       h.events.add,
		})
		if err != nil {
			t.Fatal(err)
		}
		shim.set(h.net.Attach(n))
		h.nodes[id] = n
	}
	return h
}

// lateTransport lets the node be constructed before its network endpoint
// exists.
type lateTransport struct {
	mu sync.Mutex
	t  cluster.Transport
}

func (l *lateTransport) set(t cluster.Transport) {
	l.mu.Lock()
	l.t = t
	l.mu.Unlock()
}

func (l *lateTransport) Send(to string, frame []byte) error {
	l.mu.Lock()
	t := l.t
	l.mu.Unlock()
	if t == nil {
		return errors.New("transport not attached")
	}
	return t.Send(to, frame)
}

// step advances the clock by d and ticks every live node, pumping
// delayed frames.
func (h *cliqueHarness) step(d time.Duration) {
	now := h.clock.Advance(d)
	h.net.Pump(now)
	for id, n := range h.nodes {
		if !h.downed[id] {
			n.Tick(now)
		}
	}
}

// run steps the clique count times at d per step.
func (h *cliqueHarness) run(count int, d time.Duration) {
	for i := 0; i < count; i++ {
		h.step(d)
	}
}

func (h *cliqueHarness) kill(id string) {
	h.downed[id] = true
	h.net.Down(id)
}

func (h *cliqueHarness) revive(id string) {
	delete(h.downed, id)
	h.net.Up(id)
}

func TestClusterReplicatesLaddersAndOverlay(t *testing.T) {
	h := newClique(t, []string{"a", "b", "c"}, nil)
	base := h.clock.Now()
	h.backends["a"].touch("203.0.113.7", mitigate.Block, base)
	h.backends["b"].MergeOverlayEntry(iprep.TempEntry{
		Prefix: iprep.MustCIDR("198.51.100.0/24"), Cat: iprep.KnownScraper,
		Until: base.Add(time.Hour)})
	h.run(10, 50*time.Millisecond)
	for _, id := range []string{"b", "c"} {
		if d, ok := h.backends[id].ladder("203.0.113.7"); !ok || d.Level != mitigate.Block {
			t.Fatalf("node %s missing replicated ladder: %+v ok=%v", id, d, ok)
		}
	}
	for _, id := range []string{"a", "c"} {
		b := h.backends[id]
		b.mu.Lock()
		n := len(b.overlay)
		b.mu.Unlock()
		if n != 1 {
			t.Fatalf("node %s overlay entries = %d, want 1", id, n)
		}
	}
}

// Backend stamps live in their own time domain — in follow mode they
// are log event times that systematically lag the node's wall clock
// (startup backlog, tailing lag). The delta cursor must track what was
// actually shipped, not the node clock: a watermark advanced to a
// build time would exclude every later change stamped before it, and
// replication would silently stop after the first full frame.
func TestClusterConvergesWhenBackendStampsLagClock(t *testing.T) {
	h := newClique(t, []string{"a", "b", "c"}, nil)
	lag := 2 * time.Minute // event time trails the cluster clock
	h.backends["a"].touch("203.0.113.10", mitigate.Tarpit, h.clock.Now().Add(-lag))
	h.run(10, 50*time.Millisecond)
	for _, id := range []string{"b", "c"} {
		if d, ok := h.backends[id].ladder("203.0.113.10"); !ok || d.Level != mitigate.Tarpit {
			t.Fatalf("node %s missing first lagged ladder: %+v ok=%v", id, d, ok)
		}
	}
	// Changes after the first delivered frame, still stamped far behind
	// the clock: a new client, and an escalation of the existing one.
	h.backends["a"].touch("198.51.100.20", mitigate.Challenge, h.clock.Now().Add(-lag))
	h.run(10, 50*time.Millisecond)
	h.backends["a"].touch("203.0.113.10", mitigate.Block, h.clock.Now().Add(-lag))
	h.run(10, 50*time.Millisecond)
	for _, id := range []string{"b", "c"} {
		if d, ok := h.backends[id].ladder("198.51.100.20"); !ok || d.Level != mitigate.Challenge {
			t.Fatalf("node %s never saw post-first-frame lagged client: %+v ok=%v", id, d, ok)
		}
		if d, ok := h.backends[id].ladder("203.0.113.10"); !ok || d.Level != mitigate.Block {
			t.Fatalf("node %s missing lagged escalation: %+v ok=%v", id, d, ok)
		}
	}
}

// stallTransport blocks sends to the peers in stall until released and
// reports each blocked send the moment it starts.
type stallTransport struct {
	stall   map[string]bool
	blocked chan string
	release chan struct{}
}

func (t *stallTransport) Send(to string, _ []byte) error {
	if t.stall[to] {
		t.blocked <- to
		<-t.release
		return errors.New("injected timeout")
	}
	return nil
}

func TestTickDispatchesSendsConcurrently(t *testing.T) {
	clock := newSimClock()
	tr := &stallTransport{
		stall:   map[string]bool{"b": true, "c": true},
		blocked: make(chan string, 2),
		release: make(chan struct{}),
	}
	n, err := cluster.New(cluster.Config{
		ID: "a", Peers: []string{"b", "c", "d"}, Backend: newMemBackend(),
		Transport: tr, Now: clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { n.Tick(clock.Now()); close(done) }()
	// Both stalled sends must be in flight at once: sequential dispatch
	// can only ever have one blocked, with every later peer's heartbeat
	// starved behind it for the transport timeout.
	for i := 0; i < 2; i++ {
		select {
		case <-tr.blocked:
		case <-time.After(5 * time.Second):
			t.Fatal("sends dispatched sequentially: second stalled peer never started")
		}
	}
	close(tr.release)
	<-done
	if s := n.Status(); s.DeltasSent != 1 || s.DeltasRetried != 2 {
		t.Fatalf("sent %d retried %d, want 1/2", s.DeltasSent, s.DeltasRetried)
	}
}

func TestClusterKillSuspectDeadReviveReconciles(t *testing.T) {
	h := newClique(t, []string{"a", "b", "c"}, nil)
	h.run(5, 100*time.Millisecond) // establish heartbeats
	h.kill("c")
	// Route failover: within a few intervals a and b avoid c.
	h.run(12, 100*time.Millisecond)
	if !h.events.has(cluster.EventPeerSuspect) || !h.events.has(cluster.EventPeerDead) {
		t.Fatalf("no suspect/dead transitions: %v", h.events.kinds("a"))
	}
	sa := h.nodes["a"].Status()
	var cState string
	for _, p := range sa.Peers {
		if p.ID == "c" {
			cState = p.State
		}
	}
	if cState != "dead" {
		t.Fatalf("a sees c as %q, want dead", cState)
	}
	// Ownership moved off c while it is down.
	for ip := uint32(1); ip < 200; ip++ {
		owner, _ := h.nodes["a"].Route(ip)
		if owner == "c" {
			t.Fatalf("ip %d still routed to dead node c", ip)
		}
	}
	// State written while c was down reaches it after revival.
	h.backends["a"].touch("192.0.2.50", mitigate.Challenge, h.clock.Now())
	h.revive("c")
	h.run(15, 100*time.Millisecond)
	if !h.events.has(cluster.EventPeerAlive) {
		t.Fatalf("no peer-alive after revival: %v", h.events.kinds("a"))
	}
	if d, ok := h.backends["c"].ladder("192.0.2.50"); !ok || d.Level != mitigate.Challenge {
		t.Fatalf("revived c missing anti-entropy state: %+v ok=%v", d, ok)
	}
	// And routing flows back.
	routedC := false
	for ip := uint32(1); ip < 500; ip++ {
		if owner, _ := h.nodes["a"].Route(ip); owner == "c" {
			routedC = true
			break
		}
	}
	if !routedC {
		t.Fatalf("no client routes to revived c")
	}
}

func TestClusterPartitionFailClosedFreezesUntilHeal(t *testing.T) {
	h := newClique(t, []string{"a", "b", "c"}, func(id string) cluster.DegradedPolicy {
		if id == "c" {
			return cluster.FailClosed
		}
		return cluster.FailOpen
	})
	h.run(5, 100*time.Millisecond)
	h.net.Isolate("c")
	h.run(12, 100*time.Millisecond)
	if !h.nodes["c"].Degraded() {
		t.Fatalf("isolated c not degraded: %+v", h.nodes["c"].Status())
	}
	if !h.backends["c"].isFrozen() {
		t.Fatalf("fail-closed c did not freeze escalation")
	}
	if !h.events.has(cluster.EventDegraded) {
		t.Fatalf("no degraded event: %v", h.events.kinds("c"))
	}
	// The majority side keeps quorum and never freezes.
	if h.nodes["a"].Degraded() || h.backends["a"].isFrozen() {
		t.Fatalf("majority node a degraded")
	}
	// State diverges during the partition; heal reconciles both ways.
	mid := h.clock.Now()
	h.backends["a"].touch("203.0.113.77", mitigate.Block, mid)
	h.backends["c"].touch("198.51.100.88", mitigate.Tarpit, mid)
	h.net.HealAll()
	h.run(15, 100*time.Millisecond)
	if h.nodes["c"].Degraded() || h.backends["c"].isFrozen() {
		t.Fatalf("c still degraded/frozen after heal: %+v", h.nodes["c"].Status())
	}
	if !h.events.has(cluster.EventHeal) {
		t.Fatalf("no heal event: %v", h.events.kinds("c"))
	}
	if d, ok := h.backends["c"].ladder("203.0.113.77"); !ok || d.Level != mitigate.Block {
		t.Fatalf("c missing majority-side state after heal: %+v ok=%v", d, ok)
	}
	if d, ok := h.backends["a"].ladder("198.51.100.88"); !ok || d.Level != mitigate.Tarpit {
		t.Fatalf("a missing minority-side state after heal: %+v ok=%v", d, ok)
	}
}

func TestClusterSetPeersRepartitionShipsState(t *testing.T) {
	h := newClique(t, []string{"a", "b"}, nil)
	h.run(5, 100*time.Millisecond)
	h.backends["a"].touch("203.0.113.5", mitigate.Challenge, h.clock.Now())
	h.run(3, 100*time.Millisecond)

	// A third node joins: attach it and reshape everyone's membership.
	b := newMemBackend()
	shim := &lateTransport{}
	joined, err := cluster.New(cluster.Config{
		ID: "c", Peers: []string{"a", "b"}, Backend: b, Transport: shim,
		Now: h.clock.Now, Rand: func() float64 { return 0.5 },
		DeltaInterval: 100 * time.Millisecond,
		OnEvent:       h.events.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	shim.set(h.net.Attach(joined))
	h.nodes["c"] = joined
	h.backends["c"] = b
	now := h.clock.Now()
	h.nodes["a"].SetPeers([]string{"b", "c"}, now)
	h.nodes["b"].SetPeers([]string{"a", "c"}, now)
	if !h.events.has(cluster.EventRepartition) {
		t.Fatalf("no repartition event")
	}
	if h.nodes["a"].Status().Repartitions != 1 {
		t.Fatalf("a repartitions = %d", h.nodes["a"].Status().Repartitions)
	}
	h.run(10, 100*time.Millisecond)
	// The joiner holds the pre-join state: full frames shipped it.
	if d, ok := h.backends["c"].ladder("203.0.113.5"); !ok || d.Level != mitigate.Challenge {
		t.Fatalf("joiner missing shipped ladder: %+v ok=%v", d, ok)
	}
	// All three rings agree on every client.
	for ip := uint32(1); ip < 1000; ip++ {
		oa, _ := h.nodes["a"].Route(ip)
		ob, _ := h.nodes["b"].Route(ip)
		oc, _ := h.nodes["c"].Route(ip)
		if oa != ob || ob != oc {
			t.Fatalf("ip %d routed to %s/%s/%s", ip, oa, ob, oc)
		}
	}
}

func TestNodeReceiveRejectsHostileFrames(t *testing.T) {
	clock := newSimClock()
	n, err := cluster.New(cluster.Config{
		ID: "a", Peers: []string{"b"}, Backend: newMemBackend(),
		Transport: &failTransport{clock: clock, base: clock.Now()},
		Now:       clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Receive([]byte("not a frame at all")); err == nil {
		t.Fatalf("garbage accepted")
	} else if !errors.Is(err, statecodec.ErrBadMagic) && !statecodec.Damaged(err) {
		t.Fatalf("garbage error untyped: %v", err)
	}
	// A well-formed frame from a non-member is dropped.
	stranger := &cluster.Delta{From: "mallory", Seq: 1, Kind: cluster.DeltaFull}
	frame, err := stranger.EncodeFrame()
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Receive(frame); err == nil {
		t.Fatalf("unknown-peer frame accepted")
	}
	if s := n.Status(); s.BadFrames != 2 {
		t.Fatalf("bad frames = %d, want 2", s.BadFrames)
	}
}
