package cluster

import "divscrape/internal/metrics"

// RegisterMetrics exposes the node's counters and gauges on reg, all
// labelled with the node ID. The func-backed instruments read the node's
// atomics at scrape time — registration costs nothing per request.
func (n *Node) RegisterMetrics(reg *metrics.Registry) {
	node := metrics.Label{Key: "node", Value: n.cfg.ID}
	reg.MustCounterFunc("divscrape_cluster_deltas_sent_total",
		"Delta frames delivered to peers.", n.deltasSent.Load, node)
	reg.MustCounterFunc("divscrape_cluster_deltas_retried_total",
		"Delta frame send retries.", n.deltasRetried.Load, node)
	reg.MustCounterFunc("divscrape_cluster_deltas_dropped_total",
		"Delta frames dropped after retry exhaustion.", n.deltasDropped.Load, node)
	reg.MustCounterFunc("divscrape_cluster_deltas_received_total",
		"Delta frames received and decoded.", n.deltasReceived.Load, node)
	reg.MustCounterFunc("divscrape_cluster_entries_applied_total",
		"Replicated entries merged into local state.", n.entriesApplied.Load, node)
	reg.MustCounterFunc("divscrape_cluster_entries_stale_total",
		"Replicated entries rejected as stale by merge rules.", n.entriesStale.Load, node)
	reg.MustCounterFunc("divscrape_cluster_bad_frames_total",
		"Frames rejected: decode failures or unknown senders.", n.badFrames.Load, node)
	reg.MustCounterFunc("divscrape_cluster_repartitions_total",
		"Live membership re-partitions.", n.repartitions.Load, node)
	reg.MustCounterFunc("divscrape_cluster_degraded_total",
		"Transitions into degraded (below-quorum) mode.", n.degradedCount.Load, node)
	reg.MustGaugeFunc("divscrape_cluster_peers_alive",
		"Peers the failure detector classifies alive.", n.peersAlive.Load, node)
	reg.MustGaugeFunc("divscrape_cluster_peers_suspect",
		"Peers the failure detector classifies suspect.", n.peersSuspect.Load, node)
	reg.MustGaugeFunc("divscrape_cluster_peers_dead",
		"Peers the failure detector classifies dead.", n.peersDead.Load, node)
	reg.MustGaugeFunc("divscrape_cluster_degraded",
		"1 while the node is below quorum.", func() int64 {
			if n.degradedGauge.Load() {
				return 1
			}
			return 0
		}, node)
	reg.MustGaugeFunc("divscrape_cluster_reconcile_lag_ns",
		"Staleness of the oldest reachable peer replica.", n.reconcileLagNs.Load, node)
}
