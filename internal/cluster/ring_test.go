package cluster_test

import (
	"testing"

	"divscrape/internal/cluster"
)

func TestRingOwnershipStableAndTotal(t *testing.T) {
	r := cluster.NewRing([]string{"b", "a", "c", "a", ""})
	if got := r.Nodes(); len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("Nodes() = %v, want [a b c]", got)
	}
	owned := map[string]int{}
	for ip := uint32(0); ip < 10000; ip++ {
		n := r.Owner(ip*2654435761 + 7)
		if n == "" {
			t.Fatalf("ip %d unowned", ip)
		}
		owned[n]++
	}
	for _, n := range r.Nodes() {
		if owned[n] == 0 {
			t.Fatalf("node %s owns nothing: %v", n, owned)
		}
	}
	// Same membership, any order → identical ring.
	r2 := cluster.NewRing([]string{"c", "b", "a"})
	for ip := uint32(0); ip < 2000; ip++ {
		if r.Owner(ip) != r2.Owner(ip) {
			t.Fatalf("ring not order-insensitive at ip %d", ip)
		}
	}
}

func TestRingMembershipChangeMovesMinority(t *testing.T) {
	before := cluster.NewRing([]string{"a", "b", "c", "d"})
	after := cluster.NewRing([]string{"a", "b", "c"})
	const total = 20000
	moved := 0
	for ip := uint32(0); ip < total; ip++ {
		ob, oa := before.Owner(ip), after.Owner(ip)
		if ob != oa {
			if ob != "d" {
				t.Fatalf("ip %d moved %s→%s though d left", ip, ob, oa)
			}
			moved++
		}
	}
	// Only d's arcs move: ~1/4 of the space, never the majority.
	if moved == 0 || moved > total/2 {
		t.Fatalf("moved %d of %d clients on one node leaving", moved, total)
	}
}

func TestRingOwnerSkipWalksPastDead(t *testing.T) {
	r := cluster.NewRing([]string{"a", "b", "c"})
	dead := map[string]bool{}
	skip := func(n string) bool { return dead[n] }
	for ip := uint32(1); ip < 500; ip++ {
		primary, fell := r.OwnerSkip(ip, skip)
		if fell {
			t.Fatalf("ip %d fell back with nothing dead", ip)
		}
		dead[primary] = true
		alt, fell := r.OwnerSkip(ip, skip)
		if !fell || alt == primary {
			t.Fatalf("ip %d: skip(%s) → (%s, %v)", ip, primary, alt, fell)
		}
		// All dead → primary returned anyway, flagged.
		dead["a"], dead["b"], dead["c"] = true, true, true
		last, fell := r.OwnerSkip(ip, skip)
		if !fell || last != primary {
			t.Fatalf("ip %d: all-dead → (%s, %v), want (%s, true)", ip, last, fell, primary)
		}
		dead = map[string]bool{}
	}
}

func TestRingEmpty(t *testing.T) {
	r := cluster.NewRing(nil)
	if o := r.Owner(42); o != "" {
		t.Fatalf("empty ring owner = %q", o)
	}
}
