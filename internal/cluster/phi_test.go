package cluster_test

import (
	"testing"
	"time"

	"divscrape/internal/cluster"
)

func TestPhiLifecycle(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	fd := cluster.NewFailureDetector(time.Second, 0, 0)
	fd.Register("p", base)

	if st := fd.State("p", base); st != cluster.Alive {
		t.Fatalf("just registered: %v", st)
	}
	// Regular heartbeats keep the peer alive indefinitely.
	now := base
	for i := 0; i < 20; i++ {
		now = now.Add(time.Second)
		fd.Heartbeat("p", now)
	}
	if st := fd.State("p", now.Add(2*time.Second)); st != cluster.Alive {
		t.Fatalf("2 intervals quiet: %v, phi %.2f", st, fd.Phi("p", now.Add(2*time.Second)))
	}
	// Silence accrues: past 4 expected intervals → suspect, past 8 → dead.
	if st := fd.State("p", now.Add(5*time.Second)); st != cluster.Suspect {
		t.Fatalf("5 intervals quiet: %v", st)
	}
	if st := fd.State("p", now.Add(9*time.Second)); st != cluster.Dead {
		t.Fatalf("9 intervals quiet: %v", st)
	}
	// One heartbeat resurrects.
	revive := now.Add(10 * time.Second)
	fd.Heartbeat("p", revive)
	if st := fd.State("p", revive.Add(time.Second)); st != cluster.Alive {
		t.Fatalf("after revival: %v", st)
	}
}

func TestPhiAdaptsToSlowPeer(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	fd := cluster.NewFailureDetector(time.Second, 0, 0)
	fd.Register("slow", base)
	// A peer that has always heartbeaten every 5s must not be suspected
	// after 6s of silence — that is its normal cadence.
	now := base
	for i := 0; i < 40; i++ {
		now = now.Add(5 * time.Second)
		fd.Heartbeat("slow", now)
	}
	if st := fd.State("slow", now.Add(6*time.Second)); st != cluster.Alive {
		t.Fatalf("slow peer 6s quiet: %v, phi %.2f", st, fd.Phi("slow", now.Add(6*time.Second)))
	}
	if st := fd.State("slow", now.Add(45*time.Second)); st != cluster.Dead {
		t.Fatalf("slow peer 45s quiet: %v", st)
	}
}

func TestPhiBurstCannotCollapseInterval(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	fd := cluster.NewFailureDetector(time.Second, 0, 0)
	fd.Register("bursty", base)
	// 1000 heartbeats in the same nanosecond: the interval floor keeps
	// phi from exploding on the next ordinary pause.
	for i := 0; i < 1000; i++ {
		fd.Heartbeat("bursty", base)
	}
	if phi := fd.Phi("bursty", base.Add(50*time.Millisecond)); phi > 100 {
		t.Fatalf("post-burst phi %.1f — interval collapsed", phi)
	}
}

func TestPhiUnknownPeerMaximallySuspect(t *testing.T) {
	fd := cluster.NewFailureDetector(time.Second, 0, 0)
	if st := fd.State("ghost", time.Now()); st != cluster.Dead {
		t.Fatalf("unknown peer: %v", st)
	}
	if !fd.LastHeard("ghost").IsZero() {
		t.Fatalf("unknown peer has LastHeard")
	}
}
