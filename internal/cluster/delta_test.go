package cluster_test

import (
	"errors"
	"testing"
	"time"

	"divscrape/internal/cluster"
	"divscrape/internal/iprep"
	"divscrape/internal/mitigate"
	"divscrape/internal/statecodec"
)

func sampleDelta() *cluster.Delta {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return &cluster.Delta{
		From:         "node-a:9301",
		Seq:          42,
		SentUnixNano: base.UnixNano(),
		Kind:         cluster.DeltaIncremental,
		Ladders: []mitigate.ClientDigest{
			{Key: "203.0.113.7", Score: 2.5, Level: mitigate.Challenge,
				Challenged: 3, PassUntil: base.Add(time.Hour), LastSeen: base},
			{Key: "198.51.100.9", Score: 0.4, Level: mitigate.Allow, LastSeen: base.Add(-time.Minute)},
		},
		Overlay: []iprep.TempEntry{
			{Prefix: iprep.MustCIDR("203.0.113.0/24"), Cat: iprep.KnownScraper, Until: base.Add(10 * time.Minute)},
		},
		Sessions: []cluster.SessionDigest{
			{Side: cluster.SideSentinel, IP: 0xCB007107, LastSeen: base.UnixNano()},
			{Side: cluster.SideArcane, IP: 0xC6336409, UAHash: 0xDEADBEEF, LastSeen: base.UnixNano()},
		},
	}
}

func TestDeltaFrameRoundTrip(t *testing.T) {
	d := sampleDelta()
	frame, err := d.EncodeFrame()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := cluster.DecodeFrame(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.From != d.From || got.Seq != d.Seq || got.SentUnixNano != d.SentUnixNano || got.Kind != d.Kind {
		t.Fatalf("header mismatch: %+v vs %+v", got, d)
	}
	if len(got.Ladders) != 2 || !got.Ladders[0].PassUntil.Equal(d.Ladders[0].PassUntil) ||
		got.Ladders[0].Key != "203.0.113.7" || got.Ladders[0].Level != mitigate.Challenge {
		t.Fatalf("ladders: %+v", got.Ladders)
	}
	if len(got.Overlay) != 1 || got.Overlay[0].Cat != iprep.KnownScraper ||
		!got.Overlay[0].Until.Equal(d.Overlay[0].Until) {
		t.Fatalf("overlay: %+v", got.Overlay)
	}
	if len(got.Sessions) != 2 || got.Sessions[1].UAHash != 0xDEADBEEF {
		t.Fatalf("sessions: %+v", got.Sessions)
	}
}

func TestDeltaEmptyIsValidHeartbeat(t *testing.T) {
	d := &cluster.Delta{From: "n", Seq: 1, Kind: cluster.DeltaFull}
	frame, err := d.EncodeFrame()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := cluster.DecodeFrame(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.Ladders)+len(got.Overlay)+len(got.Sessions) != 0 {
		t.Fatalf("empty delta grew payload: %+v", got)
	}
}

func TestDeltaFrameCorruptionTyped(t *testing.T) {
	frame, err := sampleDelta().EncodeFrame()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Every single-byte flip fails with a typed codec error, never panics.
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x5A
		_, err := cluster.DecodeFrame(mut)
		if err == nil {
			continue // flip in slack the checksum may tolerate? it must not:
		}
		if !statecodec.Damaged(err) && !errors.Is(err, statecodec.ErrBadMagic) {
			var ve *statecodec.VersionError
			if !errors.As(err, &ve) {
				t.Fatalf("flip at %d: untyped error %v", i, err)
			}
		}
	}
	// Truncations likewise.
	for n := 0; n < len(frame); n++ {
		if _, err := cluster.DecodeFrame(frame[:n]); err == nil {
			t.Fatalf("truncation to %d decoded", n)
		}
	}
	// Trailing garbage is rejected.
	if _, err := cluster.DecodeFrame(append(append([]byte(nil), frame...), 0, 0, 0)); err == nil {
		t.Fatalf("trailing bytes accepted")
	}
}

func TestDeltaDecodeRejectsOutOfRangeCategory(t *testing.T) {
	for _, cat := range []iprep.Category{-1, iprep.KnownScraper + 1, 99} {
		d := sampleDelta()
		d.Overlay[0].Cat = cat
		frame, err := d.EncodeFrame()
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		if _, err := cluster.DecodeFrame(frame); !errors.Is(err, statecodec.ErrCorrupt) {
			t.Fatalf("category %d decoded with err %v, want ErrCorrupt", cat, err)
		}
	}
}

func TestDeltaFrameChecksumCatchesFlips(t *testing.T) {
	frame, err := sampleDelta().EncodeFrame()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	flips := 0
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0xFF
		if _, err := cluster.DecodeFrame(mut); err != nil {
			flips++
		}
	}
	if flips != len(frame) {
		t.Fatalf("only %d of %d byte flips detected", flips, len(frame))
	}
}
