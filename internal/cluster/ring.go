package cluster

import (
	"sort"
	"strconv"

	"divscrape/internal/fnvhash"
)

// Consistent-hash routing. Each node projects ringVnodes virtual points
// onto a 32-bit ring; a client IP is owned by the first point clockwise
// of its hash. Virtual points keep ownership near-uniform with few
// nodes, and membership changes move only the arcs adjacent to the
// joining or leaving node's points — the property that makes live
// re-partition cheap: most clients keep their owner, so most state never
// has to move.
//
// The client hash is fnvhash.IP32, the same fold httpguard and the
// pipeline shard by, so "the cluster routes a client to node N, and N's
// guard routes it to shard S" composes into one stable partition of the
// client space.

// ringVnodes is the virtual-point count per node. 64 keeps the maximum
// ownership imbalance under ~20% for small clusters while the ring stays
// a few KB.
const ringVnodes = 64

// Ring is an immutable consistent-hash ring over a node set. Build with
// NewRing; lookups are lock-free and allocation-free.
type Ring struct {
	hashes []uint32
	owners []string
	nodes  []string
}

// NewRing builds a ring over nodes (order-insensitive; duplicates
// collapse). An empty node set yields a ring whose Owner returns "".
func NewRing(nodes []string) *Ring {
	uniq := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n != "" && !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{
		hashes: make([]uint32, 0, len(uniq)*ringVnodes),
		nodes:  uniq,
	}
	type point struct {
		hash uint32
		node string
	}
	points := make([]point, 0, len(uniq)*ringVnodes)
	for _, n := range uniq {
		for v := 0; v < ringVnodes; v++ {
			points = append(points, point{fnvhash.String32(n + "#" + strconv.Itoa(v)), n})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].node < points[j].node
	})
	r.owners = make([]string, len(points))
	for i, p := range points {
		r.hashes = append(r.hashes, p.hash)
		r.owners[i] = p.node
	}
	return r
}

// Nodes returns the ring's member set, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// Owner returns the node owning ip, ignoring liveness.
func (r *Ring) Owner(ip uint32) string {
	id, _ := r.OwnerSkip(ip, nil)
	return id
}

// OwnerSkip returns the node owning ip, walking clockwise past nodes the
// skip predicate rejects (a failure detector's dead set). The second
// return reports whether the primary owner was skipped — degraded
// routing, surfaced on the trace timeline. When every node is rejected
// the primary owner is returned anyway with fellBack true: serving on a
// suspect node beats dropping the request.
func (r *Ring) OwnerSkip(ip uint32, skip func(node string) bool) (owner string, fellBack bool) {
	if len(r.hashes) == 0 {
		return "", false
	}
	h := fnvhash.IP32(ip)
	i := sort.Search(len(r.hashes), func(j int) bool { return r.hashes[j] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	primary := r.owners[i]
	if skip == nil || !skip(primary) {
		return primary, false
	}
	// Walk clockwise to the next point owned by a live node distinct
	// from those already rejected; bounded by one full lap.
	for off := 1; off <= len(r.hashes); off++ {
		cand := r.owners[(i+off)%len(r.hashes)]
		if cand == primary {
			continue
		}
		if !skip(cand) {
			return cand, true
		}
	}
	return primary, true
}
