package cluster

import (
	"fmt"
	"sync"
	"time"

	"divscrape/internal/faultinject"
)

// Transport moves encoded delta frames between nodes. Send is
// synchronous and returns an error when the frame could not be handed to
// the peer; the Node layers deadline + capped-exponential retry with
// jitter on top, so a Transport implementation stays a dumb pipe.
type Transport interface {
	// Send delivers one frame to the named peer.
	Send(to string, frame []byte) error
}

// Fault points the chaos suite arms on the in-memory network: fiMemSend
// fails sends (Err — the sender's retry path) or delays delivery in
// virtual time (Delay — the frame sits in flight until the harness pumps
// past its due time). Disarmed they cost one atomic load per send.
var fiMemSend = faultinject.At("cluster.mem.send")

// ErrPeerUnreachable is returned by MemNetwork for sends into a
// partition or to a downed node — the retryable failure the outbox
// backoff absorbs.
var ErrPeerUnreachable = fmt.Errorf("cluster: peer unreachable")

// MemNetwork is the in-process transport behind the multi-"node" test
// harness and the examples: synchronous virtual-time delivery with
// explicit partitions, node kills, injectable send faults and delayed
// frames. Delivery is deterministic — frames are handed to the receiver
// either synchronously in Send or, when delayed, in Pump order sorted by
// due time then sequence.
type MemNetwork struct {
	mu       sync.Mutex
	nodes    map[string]*Node
	down     map[string]bool
	cut      map[[2]string]bool // unordered pair → partitioned
	inflight []memFrame
	seq      uint64
}

// memFrame is a delayed frame in flight. The sender is recorded so
// delivery can re-check the link: a partition created while the frame
// floats must still swallow it.
type memFrame struct {
	from  string
	to    string
	frame []byte
	due   time.Time
	seq   uint64
}

// NewMemNetwork returns an empty in-process network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{
		nodes: make(map[string]*Node),
		down:  make(map[string]bool),
		cut:   make(map[[2]string]bool),
	}
}

// Attach registers a node under its ID and returns the node's transport
// endpoint (sends are attributed to from for partition checks).
func (m *MemNetwork) Attach(n *Node) Transport {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodes[n.ID()] = n
	return memEndpoint{net: m, from: n.ID()}
}

// Down marks a node crashed: frames to it fail, and it sends nothing
// because the harness stops ticking it.
func (m *MemNetwork) Down(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.down[id] = true
}

// Up revives a downed node.
func (m *MemNetwork) Up(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.down, id)
}

// Partition cuts the link between a and b in both directions.
func (m *MemNetwork) Partition(a, b string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cut[pairKey(a, b)] = true
}

// Heal restores the link between a and b.
func (m *MemNetwork) Heal(a, b string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.cut, pairKey(a, b))
}

// Isolate cuts every link touching id — the single-node partition the
// degraded-policy tests drive.
func (m *MemNetwork) Isolate(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for other := range m.nodes {
		if other != id {
			m.cut[pairKey(id, other)] = true
		}
	}
}

// HealAll removes every partition.
func (m *MemNetwork) HealAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	clear(m.cut)
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// memEndpoint is one node's view of the network.
type memEndpoint struct {
	net  *MemNetwork
	from string
}

// Send implements Transport. The injected fault, when armed, either
// fails the send (Err — the caller retries) or floats the frame into the
// in-flight queue for Delay of virtual time (the harness delivers it via
// Pump). A send into a partition or to a downed node fails with
// ErrPeerUnreachable.
func (e memEndpoint) Send(to string, frame []byte) (err error) {
	m := e.net
	var delay time.Duration
	if f := fiMemSend.Active(); f != nil {
		if f.Err != nil {
			return f.Err
		}
		delay = f.Delay
	}
	m.mu.Lock()
	n := m.nodes[to]
	blocked := m.down[to] || m.cut[pairKey(e.from, to)]
	if n == nil || blocked {
		m.mu.Unlock()
		return ErrPeerUnreachable
	}
	if delay > 0 {
		m.seq++
		m.inflight = append(m.inflight, memFrame{
			from:  e.from,
			to:    to,
			frame: append([]byte(nil), frame...),
			due:   n.Now().Add(delay),
			seq:   m.seq,
		})
		m.mu.Unlock()
		return nil
	}
	m.mu.Unlock()
	// Delivered outside the network lock: Receive takes the node's own
	// lock and may call back into Backend state.
	return n.Receive(frame)
}

// Pump delivers every in-flight delayed frame due at or before now, in
// (due, enqueue) order. Frames whose destination went down or was
// partitioned away after the send are dropped, like packets in a real
// network. It returns the number delivered.
func (m *MemNetwork) Pump(now time.Time) int {
	m.mu.Lock()
	var due, rest []memFrame
	for _, f := range m.inflight {
		if !f.due.After(now) {
			due = append(due, f)
		} else {
			rest = append(rest, f)
		}
	}
	m.inflight = rest
	// Stable order: due time, then send order.
	for i := 1; i < len(due); i++ {
		for j := i; j > 0 && (due[j].due.Before(due[j-1].due) ||
			(due[j].due.Equal(due[j-1].due) && due[j].seq < due[j-1].seq)); j-- {
			due[j], due[j-1] = due[j-1], due[j]
		}
	}
	targets := make([]*Node, len(due))
	for i, f := range due {
		if n := m.nodes[f.to]; n != nil && !m.down[f.to] && !m.cut[pairKey(f.from, f.to)] {
			targets[i] = n
		}
	}
	m.mu.Unlock()
	delivered := 0
	for i, f := range due {
		if targets[i] != nil {
			_ = targets[i].Receive(f.frame)
			delivered++
		}
	}
	return delivered
}

// InFlight reports the number of delayed frames not yet delivered.
func (m *MemNetwork) InFlight() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.inflight)
}
