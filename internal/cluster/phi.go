package cluster

import "time"

// Phi-accrual-style failure detection. Each peer's heartbeat arrivals
// (any frame counts — an empty delta is a heartbeat) feed an
// exponentially weighted estimate of its inter-arrival time; the
// suspicion level phi is how many expected intervals have elapsed since
// the last arrival. Unlike a fixed timeout, the scale adapts to each
// peer's observed cadence: a peer that has always been slow needs to go
// quiet for longer before it is suspected, while a fast peer's silence
// is noticed within a few of its own intervals.
//
// The detector never reads the wall clock: every method takes now from
// the caller, so the cluster tests drive suspect → dead transitions on a
// simulated clock, the same determinism discipline as the engines and
// detectors.

// PeerState classifies a peer's liveness.
type PeerState uint8

const (
	// Alive: heartbeats arriving within expectation.
	Alive PeerState = iota
	// Suspect: quiet past the suspect threshold; routing starts avoiding
	// the peer but its state is retained.
	Suspect
	// Dead: quiet past the dead threshold; ownership re-partitions away
	// and a later heartbeat triggers anti-entropy reconciliation.
	Dead
)

var peerStateNames = [...]string{"alive", "suspect", "dead"}

// String returns the state's stable lower-case name.
func (s PeerState) String() string {
	if int(s) < len(peerStateNames) {
		return peerStateNames[s]
	}
	return "invalid"
}

// Phi thresholds. Phi is elapsed-time over expected-interval, so 4 means
// "quiet for four times its usual gap" — late, worth avoiding — and 8
// means the peer is gone for practical purposes.
const (
	defaultSuspectPhi = 4.0
	defaultDeadPhi    = 8.0
	// ewmaAlpha is the weight of the newest interval sample.
	ewmaAlpha = 0.2
	// minInterval floors the estimate so a burst of back-to-back frames
	// cannot collapse the expected interval toward zero and flap the
	// peer suspect on the next ordinary gap.
	minInterval = 10 * time.Millisecond
)

// peerClock is one peer's arrival history.
type peerClock struct {
	last     time.Time
	interval time.Duration // EWMA of inter-arrival gaps
	seen     bool
}

// FailureDetector tracks heartbeat arrivals for a peer set. Not safe for
// concurrent use; the owning Node serialises access.
type FailureDetector struct {
	suspectPhi float64
	deadPhi    float64
	expected   time.Duration // seed interval before samples accumulate
	peers      map[string]*peerClock
}

// NewFailureDetector builds a detector seeded with the expected
// heartbeat interval (the cluster's delta cadence). suspectPhi and
// deadPhi zero take the defaults.
func NewFailureDetector(expected time.Duration, suspectPhi, deadPhi float64) *FailureDetector {
	if expected <= 0 {
		expected = time.Second
	}
	if suspectPhi <= 0 {
		suspectPhi = defaultSuspectPhi
	}
	if deadPhi <= suspectPhi {
		deadPhi = max(defaultDeadPhi, suspectPhi*2)
	}
	return &FailureDetector{
		suspectPhi: suspectPhi,
		deadPhi:    deadPhi,
		expected:   expected,
		peers:      make(map[string]*peerClock),
	}
}

// Register seeds a peer at now, as if a heartbeat had just arrived: a
// freshly joined peer gets a full expected interval of grace before phi
// starts accruing.
func (fd *FailureDetector) Register(id string, now time.Time) {
	fd.peers[id] = &peerClock{last: now, interval: fd.expected, seen: true}
}

// Forget drops a peer (explicit leave).
func (fd *FailureDetector) Forget(id string) { delete(fd.peers, id) }

// Heartbeat records an arrival from id at now.
func (fd *FailureDetector) Heartbeat(id string, now time.Time) {
	p := fd.peers[id]
	if p == nil {
		fd.Register(id, now)
		return
	}
	gap := now.Sub(p.last)
	if gap < minInterval {
		gap = minInterval
	}
	p.interval = time.Duration((1-ewmaAlpha)*float64(p.interval) + ewmaAlpha*float64(gap))
	if p.interval < minInterval {
		p.interval = minInterval
	}
	p.last = now
}

// Phi returns the peer's suspicion level at now: elapsed time since its
// last heartbeat in units of its expected interval. Unknown peers are
// maximally suspect.
func (fd *FailureDetector) Phi(id string, now time.Time) float64 {
	p := fd.peers[id]
	if p == nil || !p.seen {
		return fd.deadPhi + 1
	}
	elapsed := now.Sub(p.last)
	if elapsed <= 0 {
		return 0
	}
	return float64(elapsed) / float64(p.interval)
}

// State classifies the peer at now against the phi thresholds.
func (fd *FailureDetector) State(id string, now time.Time) PeerState {
	phi := fd.Phi(id, now)
	switch {
	case phi >= fd.deadPhi:
		return Dead
	case phi >= fd.suspectPhi:
		return Suspect
	default:
		return Alive
	}
}

// LastHeard returns the peer's last heartbeat time (zero when unknown).
func (fd *FailureDetector) LastHeard(id string) time.Time {
	if p := fd.peers[id]; p != nil {
		return p.last
	}
	return time.Time{}
}
