package cluster_test

import (
	"testing"
	"time"

	"divscrape/internal/cluster"
	"divscrape/internal/iprep"
	"divscrape/internal/mitigate"
)

// benchDelta builds a delta of realistic mid-size: 64 ladder digests,
// 16 overlay entries, 128 session digests.
func benchDelta() *cluster.Delta {
	base := time.Unix(1520700000, 0)
	d := &cluster.Delta{
		From:         "node-a:9301",
		Seq:          99,
		SentUnixNano: base.UnixNano(),
		Kind:         cluster.DeltaIncremental,
	}
	for i := 0; i < 64; i++ {
		d.Ladders = append(d.Ladders, mitigate.ClientDigest{
			Key:        "203.0.113." + string(rune('0'+i%10)),
			Score:      float64(i) * 0.31,
			Level:      mitigate.Action(i % 4),
			Challenged: i % 9,
			PassUntil:  base.Add(time.Duration(i) * time.Minute),
			LastSeen:   base.Add(time.Duration(i) * time.Second),
		})
	}
	for i := 0; i < 16; i++ {
		d.Overlay = append(d.Overlay, iprep.TempEntry{
			Prefix: iprep.Prefix{IP: uint32(0xC6336400 + i), Bits: 32},
			Cat:    iprep.KnownScraper,
			Until:  base.Add(time.Duration(i) * time.Minute),
		})
	}
	for i := 0; i < 128; i++ {
		d.Sessions = append(d.Sessions, cluster.SessionDigest{
			Side:     uint8(i % 2),
			IP:       uint32(0xCB007100 + i),
			UAHash:   uint64(i) * 0x9E3779B97F4A7C15,
			LastSeen: base.UnixNano() + int64(i),
		})
	}
	return d
}

// BenchmarkClusterDelta measures one full replication hop: encode the
// delta into a framed container, then validate and decode it back.
func BenchmarkClusterDelta(b *testing.B) {
	d := benchDelta()
	frame, err := d.EncodeFrame()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := d.EncodeFrame()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cluster.DecodeFrame(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterDeltaDecode(b *testing.B) {
	frame, err := benchDelta().EncodeFrame()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.DecodeFrame(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterRoute(b *testing.B) {
	clock := newSimClock()
	n, err := cluster.New(cluster.Config{
		ID:        "a",
		Peers:     []string{"b", "c", "d", "e"},
		Backend:   newMemBackend(),
		Transport: &failTransport{clock: clock, base: clock.Now()},
		Now:       clock.Now,
	})
	if err != nil {
		b.Fatal(err)
	}
	n.Tick(clock.Now())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Route(uint32(i))
	}
}

// TestRouteZeroAllocs pins the request-path promise: routing a client
// through the ring with liveness checks allocates nothing.
func TestRouteZeroAllocs(t *testing.T) {
	clock := newSimClock()
	n, err := cluster.New(cluster.Config{
		ID:        "a",
		Peers:     []string{"b", "c"},
		Backend:   newMemBackend(),
		Transport: &failTransport{clock: clock, base: clock.Now()},
		Now:       clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Tick(clock.Now())
	ip := uint32(0xCB007107)
	if allocs := testing.AllocsPerRun(500, func() {
		n.Route(ip)
		ip++
	}); allocs != 0 {
		t.Fatalf("Route allocates %.1f per call", allocs)
	}
}
