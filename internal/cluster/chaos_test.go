package cluster_test

import (
	"errors"
	"testing"
	"time"

	"divscrape/internal/faultinject"
	"divscrape/internal/mitigate"
)

// Chaos suite: frame loss and delay injected at the transport's fault
// point. The replication plane must absorb both through the jittered
// retry schedule and idempotent merges — converging to the same state it
// reaches on a clean network, with the damage visible in the counters.

func TestChaosClusterDroppedFramesRetryThenConverge(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	h := newClique(t, []string{"a", "b", "c"}, nil)
	h.run(3, 100*time.Millisecond)

	// The next 20 sends fail outright; the outboxes must retry on the
	// capped-exponential schedule and deliver once the fault exhausts.
	faultinject.Enable("cluster.mem.send", faultinject.Fault{
		Err:   errors.New("injected frame loss"),
		Times: 20,
	})
	h.backends["a"].touch("203.0.113.99", mitigate.Block, h.clock.Now())
	h.run(40, 100*time.Millisecond)

	for _, id := range []string{"b", "c"} {
		if d, ok := h.backends[id].ladder("203.0.113.99"); !ok || d.Level != mitigate.Block {
			t.Fatalf("node %s did not converge through frame loss: %+v ok=%v", id, d, ok)
		}
	}
	retried := uint64(0)
	for _, id := range []string{"a", "b", "c"} {
		retried += h.nodes[id].Status().DeltasRetried
	}
	if retried == 0 {
		t.Fatalf("no retries recorded under 20 injected send failures")
	}
}

func TestChaosClusterDelayedFramesStillConverge(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	h := newClique(t, []string{"a", "b", "c"}, nil)
	h.run(3, 100*time.Millisecond)

	// Frames float in the network for 350ms of virtual time before
	// delivery: reordered against newer frames, merged late. LWW merges
	// make the outcome identical.
	faultinject.Enable("cluster.mem.send", faultinject.Fault{
		Delay: 350 * time.Millisecond,
		Times: 12,
	})
	h.backends["b"].touch("198.51.100.200", mitigate.Challenge, h.clock.Now())
	h.step(100 * time.Millisecond)
	if h.net.InFlight() == 0 {
		t.Fatalf("delay fault armed but nothing floated in flight")
	}
	h.run(40, 100*time.Millisecond)
	if h.net.InFlight() != 0 {
		t.Fatalf("%d frames still in flight after pumping past their due times", h.net.InFlight())
	}
	for _, id := range []string{"a", "c"} {
		if d, ok := h.backends[id].ladder("198.51.100.200"); !ok || d.Level != mitigate.Challenge {
			t.Fatalf("node %s did not converge through delay: %+v ok=%v", id, d, ok)
		}
	}
}

func TestChaosClusterDelayedFrameRespectsLaterPartition(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	h := newClique(t, []string{"a", "b"}, nil)
	h.run(3, 100*time.Millisecond)

	// Float the next frames in flight, then cut the link while they are
	// mid-air: like packets in a real network, a partition created after
	// the send must still swallow them at delivery time.
	faultinject.Enable("cluster.mem.send", faultinject.Fault{
		Delay: 300 * time.Millisecond,
		Times: 4,
	})
	h.backends["a"].touch("203.0.113.50", mitigate.Block, h.clock.Now())
	h.step(100 * time.Millisecond)
	if h.net.InFlight() == 0 {
		t.Fatalf("delay fault armed but nothing floated in flight")
	}
	h.net.Partition("a", "b")
	// Pump well past every due time without ticking the nodes, so the
	// only delivery path is the delayed in-flight queue.
	for i := 0; i < 10; i++ {
		h.net.Pump(h.clock.Advance(100 * time.Millisecond))
	}
	if h.net.InFlight() != 0 {
		t.Fatalf("%d frames still in flight after pumping past their due times", h.net.InFlight())
	}
	if _, ok := h.backends["b"].ladder("203.0.113.50"); ok {
		t.Fatalf("delayed frame tunnelled through a partition created after the send")
	}
	// Heal, resume ticking: the peer-alive anti-entropy full frame
	// re-covers the lost window.
	h.net.HealAll()
	h.run(30, 100*time.Millisecond)
	if d, ok := h.backends["b"].ladder("203.0.113.50"); !ok || d.Level != mitigate.Block {
		t.Fatalf("b did not reconcile after heal: %+v ok=%v", d, ok)
	}
}

func TestChaosClusterRetryExhaustionRecovers(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	h := newClique(t, []string{"a", "b"}, nil)
	h.run(3, 100*time.Millisecond)

	// Unbounded send failure long enough to exhaust every retry: frames
	// drop, the watermark stays put. After the fault lifts, the next
	// cadence re-covers the whole missed window.
	faultinject.Enable("cluster.mem.send", faultinject.Fault{
		Err: errors.New("injected blackout"),
	})
	h.backends["a"].touch("192.0.2.123", mitigate.Tarpit, h.clock.Now())
	h.run(30, 100*time.Millisecond)
	if h.nodes["a"].Status().DeltasDropped == 0 {
		t.Fatalf("blackout did not exhaust retries: %+v", h.nodes["a"].Status())
	}
	if _, ok := h.backends["b"].ladder("192.0.2.123"); ok {
		t.Fatalf("frame leaked through blackout")
	}
	faultinject.Disable("cluster.mem.send")
	h.run(20, 100*time.Millisecond)
	if d, ok := h.backends["b"].ladder("192.0.2.123"); !ok || d.Level != mitigate.Tarpit {
		t.Fatalf("b did not recover dropped window after blackout: %+v ok=%v", d, ok)
	}
}
