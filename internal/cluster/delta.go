package cluster

import (
	"bytes"
	"fmt"

	"divscrape/internal/iprep"
	"divscrape/internal/mitigate"
	"divscrape/internal/statecodec"
)

// The cluster wire format. A Delta is one node's periodic state
// announcement: the mitigation-ladder digests, reputation-overlay entries
// and detector-session digests that changed since the last frame the
// peer acknowledged, framed as a versioned, checksummed statecodec
// container — the same codec the checkpoint plane trusts, so a torn,
// truncated or hostile peer frame fails with a typed error
// (statecodec.ErrCorrupt and friends) and never panics or over-reads.
// An empty delta is meaningful: it is the heartbeat the failure detector
// feeds on.
//
// Every payload element carries its own last-seen or expiry stamp and
// merges with last-writer-wins (ladders, sessions) or longest-lease-wins
// (overlay) semantics, so frames are idempotent and order-tolerant: the
// transport may retry, duplicate or reorder them and replicas still
// converge on the owner's state. That is the whole reconciliation
// protocol — anti-entropy after a partition is just a delta with a zero
// watermark (DeltaFull), carrying everything.

// tagDelta opens a cluster delta block in a statecodec frame.
const tagDelta uint16 = 0x434C

// Delta kinds.
const (
	// DeltaIncremental carries changes since the sender's per-peer
	// watermark.
	DeltaIncremental uint8 = 1
	// DeltaFull carries the sender's complete replicable state — the
	// anti-entropy frame sent on join, heal and repartition.
	DeltaFull uint8 = 2
)

// Digest side identifiers for session digests.
const (
	// SideSentinel marks a commercial-detector session digest.
	SideSentinel uint8 = 0
	// SideArcane marks a behavioural-detector session digest.
	SideArcane uint8 = 1
	// SideTrajectory marks a semantic-trajectory-detector session digest.
	SideTrajectory uint8 = 2
)

// SessionDigest summarises one live detector session: enough for a peer
// to gauge how much per-client evidence would be lost if it had to take
// over the client, and for reconcile-lag accounting — not the session
// state itself, which stays with the owner.
type SessionDigest struct {
	// Side is the detector the session belongs to (SideSentinel,
	// SideArcane or SideTrajectory).
	Side uint8
	// IP is the client address component of the session key.
	IP uint32
	// UAHash is the user-agent component (zero for IP-only keys).
	UAHash uint64
	// LastSeen is the session's last activity.
	LastSeen int64 // unix nanoseconds
}

// Delta is one node's state announcement.
type Delta struct {
	// From is the sending node's ID.
	From string
	// Seq is the sender's frame sequence number, monotone per sender.
	Seq uint64
	// SentUnixNano is the sender's clock when the frame was built; the
	// receiver's reconcile-lag gauge is the age of the newest applied
	// frame per peer.
	SentUnixNano int64
	// Kind is DeltaIncremental or DeltaFull.
	Kind uint8
	// Ladders carries mitigation-ladder digests.
	Ladders []mitigate.ClientDigest
	// Overlay carries reputation-overlay entries.
	Overlay []iprep.TempEntry
	// Sessions carries detector-session digests.
	Sessions []SessionDigest
}

// EncodeInto serialises the delta into w as a tagged block.
func (d *Delta) EncodeInto(w *statecodec.Writer) {
	w.Tag(tagDelta)
	w.String(d.From)
	w.Uint64(d.Seq)
	w.Int64(d.SentUnixNano)
	w.Uint8(d.Kind)
	w.Uint32(uint32(len(d.Ladders)))
	for _, l := range d.Ladders {
		w.String(l.Key)
		w.Float64(l.Score)
		w.Uint8(uint8(l.Level))
		w.Int(l.Challenged)
		w.Time(l.PassUntil)
		w.Time(l.LastSeen)
	}
	w.Uint32(uint32(len(d.Overlay)))
	for _, e := range d.Overlay {
		w.Uint32(e.Prefix.IP)
		w.Uint8(uint8(e.Prefix.Bits))
		w.Int(int(e.Cat))
		w.Time(e.Until)
	}
	w.Uint32(uint32(len(d.Sessions)))
	for _, s := range d.Sessions {
		w.Uint8(s.Side)
		w.Uint32(s.IP)
		w.Uint64(s.UAHash)
		w.Int64(s.LastSeen)
	}
}

// EncodeFrame serialises the delta as a complete statecodec container —
// magic, version, length and checksum included — ready for a transport.
func (d *Delta) EncodeFrame() ([]byte, error) {
	w := statecodec.NewWriter()
	d.EncodeInto(w)
	var buf bytes.Buffer
	buf.Grow(w.Len() + 22)
	if err := statecodec.Encode(&buf, w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeFrame validates a transport frame and decodes the delta inside.
// Every failure mode — bad magic, version skew, checksum mismatch,
// truncation, out-of-range fields — returns a typed statecodec error;
// hostile bytes never panic. The frame must contain exactly one delta.
func DecodeFrame(frame []byte) (*Delta, error) {
	br := bytes.NewReader(frame)
	r, err := statecodec.Decode(br)
	if err != nil {
		return nil, err
	}
	d, err := decodeDelta(r)
	if err != nil {
		return nil, err
	}
	// Exactly one delta, nothing else: slack inside the container or
	// bytes after it both mean a frame this node did not produce.
	if rem := r.Remaining() + br.Len(); rem != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after delta", statecodec.ErrCorrupt, rem)
	}
	return d, nil
}

func decodeDelta(r *statecodec.Reader) (*Delta, error) {
	if err := r.Expect(tagDelta); err != nil {
		return nil, err
	}
	d := &Delta{
		From:         r.String(),
		Seq:          r.Uint64(),
		SentUnixNano: r.Int64(),
		Kind:         r.Uint8(),
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if d.Kind != DeltaIncremental && d.Kind != DeltaFull {
		return nil, fmt.Errorf("%w: delta kind %d", statecodec.ErrCorrupt, d.Kind)
	}
	// Minimum ladder entry: empty key (4) + score (8) + level (1) +
	// challenged (8) + two timestamps (12 each).
	n := r.Count(4 + 8 + 1 + 8 + 12 + 12)
	if n > 0 {
		d.Ladders = make([]mitigate.ClientDigest, 0, n)
	}
	for i := 0; i < n; i++ {
		l := mitigate.ClientDigest{
			Key:        r.String(),
			Score:      r.Float64(),
			Level:      mitigate.Action(r.Uint8()),
			Challenged: r.Int(),
			PassUntil:  r.Time(),
			LastSeen:   r.Time(),
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		if l.Level > mitigate.Block {
			return nil, fmt.Errorf("%w: ladder rung %d", statecodec.ErrCorrupt, uint8(l.Level))
		}
		d.Ladders = append(d.Ladders, l)
	}
	// Minimum overlay entry: ip (4) + bits (1) + category (8) + expiry (12).
	n = r.Count(4 + 1 + 8 + 12)
	if n > 0 {
		d.Overlay = make([]iprep.TempEntry, 0, n)
	}
	for i := 0; i < n; i++ {
		e := iprep.TempEntry{
			Prefix: iprep.Prefix{IP: r.Uint32(), Bits: int(r.Uint8())},
			Cat:    iprep.Category(r.Int()),
			Until:  r.Time(),
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		if e.Prefix.Bits > 32 {
			return nil, fmt.Errorf("%w: prefix length %d", statecodec.ErrCorrupt, e.Prefix.Bits)
		}
		if !e.Cat.Valid() {
			return nil, fmt.Errorf("%w: overlay category %d", statecodec.ErrCorrupt, int(e.Cat))
		}
		d.Overlay = append(d.Overlay, e)
	}
	// Minimum session digest: side (1) + ip (4) + ua hash (8) + stamp (8).
	n = r.Count(1 + 4 + 8 + 8)
	if n > 0 {
		d.Sessions = make([]SessionDigest, 0, n)
	}
	for i := 0; i < n; i++ {
		s := SessionDigest{
			Side:     r.Uint8(),
			IP:       r.Uint32(),
			UAHash:   r.Uint64(),
			LastSeen: r.Int64(),
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		if s.Side > SideTrajectory {
			return nil, fmt.Errorf("%w: session digest side %d", statecodec.ErrCorrupt, s.Side)
		}
		d.Sessions = append(d.Sessions, s)
	}
	return d, r.Err()
}
