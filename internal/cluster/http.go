package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// HTTP transport: the real inter-node pipe behind `scrapedetect
// -cluster-listen/-cluster-peers`. Peer IDs are host:port addresses;
// frames travel as POST bodies on deltaPath. The client timeout is the
// per-exchange deadline the retry schedule wraps.

// deltaPath is the frame ingestion endpoint served by Handler.
const deltaPath = "/cluster/delta"

// maxFramesize bounds an accepted frame body: a hostile or confused
// peer cannot balloon the receiver's memory. Generous next to real
// deltas (a ladder digest is tens of bytes).
const maxFrameSize = 8 << 20

// HTTPTransport sends frames to peers over HTTP POST.
type HTTPTransport struct {
	client *http.Client
}

// NewHTTPTransport builds a transport whose sends observe timeout as a
// hard deadline (zero selects 2s).
func NewHTTPTransport(timeout time.Duration) *HTTPTransport {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &HTTPTransport{client: &http.Client{Timeout: timeout}}
}

// Send implements Transport: one POST of the frame to the peer address.
func (t *HTTPTransport) Send(to string, frame []byte) error {
	url := to
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	resp, err := t.client.Post(url+deltaPath, "application/octet-stream",
		bytes.NewReader(frame))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: peer %s returned %s", to, resp.Status)
	}
	return nil
}

// Handler serves the node's frame ingestion endpoint. Mount at the
// cluster listen address; decode failures answer 400 with the typed
// error text, oversized bodies 413.
func Handler(n *Node) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(deltaPath, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxFrameSize+1))
		if err != nil {
			http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(body) > maxFrameSize {
			http.Error(w, "frame too large", http.StatusRequestEntityTooLarge)
			return
		}
		if err := n.Receive(body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	return mux
}
