// Package ensemble combines verdicts from diverse detectors, implementing
// the adjudication schemes the DSN 2018 paper's Section V proposes to
// evaluate: r-out-of-n voting (1-out-of-2 "alarm if either", 2-out-of-2
// "alarm only if both"), weighted score fusion, and the parallel vs serial
// deployment topologies with their inspection-cost accounting.
package ensemble

import (
	"fmt"

	"divscrape/internal/detector"
)

// Adjudicator folds per-detector verdicts on one request into a final
// decision.
type Adjudicator interface {
	// Name identifies the scheme in reports.
	Name() string
	// Decide combines verdicts, ordered consistently with the detector
	// list the caller registered.
	Decide(verdicts []detector.Verdict) detector.Verdict
}

// KOutOfN alerts when at least K of the verdicts alert. K=1 over two
// detectors is the paper's "1-out-of-2" scheme (maximise detection), K=N
// is "2-out-of-2" (minimise false alarms).
type KOutOfN struct {
	// K is the vote threshold (>= 1).
	K int
}

var _ Adjudicator = KOutOfN{}

// Name implements Adjudicator.
func (k KOutOfN) Name() string { return fmt.Sprintf("%d-out-of-n", k.K) }

// Decide implements Adjudicator. The fused score is the K-th largest
// verdict score, so thresholding the fused score reproduces the vote.
func (k KOutOfN) Decide(verdicts []detector.Verdict) detector.Verdict {
	if k.K < 1 || len(verdicts) == 0 {
		return detector.Verdict{}
	}
	votes := 0
	out := detector.Verdict{}
	// K-th largest score without sorting: for the small N here (2-5
	// detectors) a selection scan is cheapest.
	out.Score = kthLargestScore(verdicts, k.K)
	for i := range verdicts {
		v := &verdicts[i]
		if v.Alert {
			votes++
			for j := 0; j < v.Reasons.Len(); j++ {
				out.Reasons.Append(v.Reasons.At(j))
			}
		}
	}
	out.Alert = votes >= k.K
	if !out.Alert {
		out.Reasons = detector.ReasonList{}
	}
	return out
}

func kthLargestScore(verdicts []detector.Verdict, k int) float64 {
	if k > len(verdicts) {
		k = len(verdicts)
	}
	// Insertion-select over a tiny slice.
	var top [8]float64
	n := len(verdicts)
	if n > len(top) {
		n = len(top)
	}
	count := 0
	for _, v := range verdicts {
		s := v.Score
		i := count
		if count < n {
			count++
		} else if s <= top[count-1] {
			continue
		} else {
			i = count - 1
		}
		for i > 0 && top[i-1] < s {
			top[i] = top[i-1]
			i--
		}
		top[i] = s
	}
	if k > count {
		k = count
	}
	if k < 1 {
		return 0
	}
	return top[k-1]
}

// Weighted fuses scores linearly and alerts above a threshold; it is the
// natural generalisation once per-detector reliabilities are known (the
// paper's labelled next step).
type Weighted struct {
	// Weights aligns with the detector order; missing entries count 0.
	Weights []float64
	// Threshold is the fused-score alert level.
	Threshold float64
	// Label names the scheme in reports; defaults to "weighted".
	Label string
}

var _ Adjudicator = Weighted{}

// Name implements Adjudicator.
func (w Weighted) Name() string {
	if w.Label != "" {
		return w.Label
	}
	return "weighted"
}

// Decide implements Adjudicator.
func (w Weighted) Decide(verdicts []detector.Verdict) detector.Verdict {
	var sum, total float64
	for i, v := range verdicts {
		if i >= len(w.Weights) {
			break
		}
		sum += w.Weights[i] * v.Score
		total += w.Weights[i]
	}
	if total > 0 {
		sum /= total
	}
	out := detector.Verdict{Score: sum, Alert: sum >= w.Threshold}
	if out.Alert {
		for i := range verdicts {
			v := &verdicts[i]
			if v.Alert {
				for j := 0; j < v.Reasons.Len(); j++ {
					out.Reasons.Append(v.Reasons.At(j))
				}
			}
		}
	}
	return out
}
