package ensemble

import (
	"fmt"

	"divscrape/internal/detector"
)

// Topology is a deployment arrangement of two detectors over a traffic
// stream. The paper's Section V distinguishes parallel deployment (both
// tools monitor all traffic) from serial deployment (one tool filters the
// traffic the second must analyse); serial deployments trade inspection
// cost against the adjudication outcome.
type Topology interface {
	// Name identifies the topology in reports.
	Name() string
	// Inspect runs one request through the arrangement.
	Inspect(req *detector.Request) detector.Verdict
	// Cost reports how many requests each detector has inspected.
	Cost() []DetectorCost
	// Reset clears detector state and cost counters.
	Reset()
}

// DetectorCost is the per-detector inspection count of a topology run.
type DetectorCost struct {
	// Detector is the detector name.
	Detector string
	// Inspected is the number of requests this detector analysed.
	Inspected uint64
}

// Parallel runs every detector on every request and adjudicates. This is
// the paper's measurement configuration: both tools see all traffic.
type Parallel struct {
	detectors  []detector.Detector
	adjudicate Adjudicator
	costs      []uint64
	scratch    []detector.Verdict
}

var (
	_ Topology          = (*Parallel)(nil)
	_ detector.Detector = (*Parallel)(nil)
)

// NewParallel builds a parallel arrangement of detectors under an
// adjudication scheme.
func NewParallel(adj Adjudicator, detectors ...detector.Detector) (*Parallel, error) {
	if len(detectors) == 0 {
		return nil, fmt.Errorf("ensemble: parallel topology needs at least one detector")
	}
	if adj == nil {
		return nil, fmt.Errorf("ensemble: parallel topology needs an adjudicator")
	}
	return &Parallel{
		detectors:  detectors,
		adjudicate: adj,
		costs:      make([]uint64, len(detectors)),
		scratch:    make([]detector.Verdict, len(detectors)),
	}, nil
}

// Name implements Topology.
func (p *Parallel) Name() string { return "parallel/" + p.adjudicate.Name() }

// Inspect implements Topology.
func (p *Parallel) Inspect(req *detector.Request) detector.Verdict {
	for i, d := range p.detectors {
		d.InspectInto(req, &p.scratch[i])
		p.costs[i]++
	}
	return p.adjudicate.Decide(p.scratch)
}

// InspectInto keeps the arrangement usable anywhere a detector.Detector
// is expected (a cascade can itself feed a pipeline).
func (p *Parallel) InspectInto(req *detector.Request, out *detector.Verdict) {
	*out = p.Inspect(req)
}

// Cost implements Topology.
func (p *Parallel) Cost() []DetectorCost {
	out := make([]DetectorCost, len(p.detectors))
	for i, d := range p.detectors {
		out[i] = DetectorCost{Detector: d.Name(), Inspected: p.costs[i]}
	}
	return out
}

// Reset implements Topology.
func (p *Parallel) Reset() {
	for i, d := range p.detectors {
		d.Reset()
		p.costs[i] = 0
	}
}

// SerialMode selects the short-circuit semantics of a serial arrangement.
type SerialMode int

const (
	// CascadeOR: the filter's alert is final (no second opinion needed to
	// raise an alarm); only traffic the filter passes clean reaches the
	// second detector. Equivalent decision to 1-out-of-2, but the second
	// detector inspects only part of the traffic.
	CascadeOR SerialMode = iota + 1
	// CascadeAND: only traffic the filter alerts on is escalated to the
	// second detector, and the alarm stands only if the second detector
	// confirms. Equivalent decision to 2-out-of-2 up to state effects,
	// with the second detector inspecting only suspect traffic.
	CascadeAND
)

// String returns the mode name.
func (m SerialMode) String() string {
	switch m {
	case CascadeOR:
		return "cascade-or"
	case CascadeAND:
		return "cascade-and"
	default:
		return fmt.Sprintf("serial-mode(%d)", int(m))
	}
}

// Serial arranges two detectors in a filter→analyzer chain.
//
// Note the behavioural subtlety the cost saving buys: the second detector
// only *sees* the subset of traffic forwarded to it, so its per-session
// state is built from partial history. Serial deployments are therefore
// not exactly equivalent to the corresponding vote over parallel
// deployments — quantifying that gap is experiment E7.
type Serial struct {
	filter   detector.Detector
	analyzer detector.Detector
	mode     SerialMode
	costs    [2]uint64
}

var (
	_ Topology          = (*Serial)(nil)
	_ detector.Detector = (*Serial)(nil)
)

// NewSerial builds a serial arrangement: filter inspects everything,
// analyzer inspects the subset selected by mode.
func NewSerial(filter, analyzer detector.Detector, mode SerialMode) (*Serial, error) {
	if filter == nil || analyzer == nil {
		return nil, fmt.Errorf("ensemble: serial topology needs two detectors")
	}
	if mode != CascadeOR && mode != CascadeAND {
		return nil, fmt.Errorf("ensemble: invalid serial mode %d", int(mode))
	}
	return &Serial{filter: filter, analyzer: analyzer, mode: mode}, nil
}

// Name implements Topology.
func (s *Serial) Name() string {
	return fmt.Sprintf("serial/%s→%s/%s", s.filter.Name(), s.analyzer.Name(), s.mode)
}

// Inspect implements Topology.
func (s *Serial) Inspect(req *detector.Request) detector.Verdict {
	first := s.filter.Inspect(req)
	s.costs[0]++
	switch s.mode {
	case CascadeOR:
		if first.Alert {
			return first
		}
		second := s.analyzer.Inspect(req)
		s.costs[1]++
		return second
	default: // CascadeAND
		if !first.Alert {
			return detector.Verdict{Score: first.Score}
		}
		second := s.analyzer.Inspect(req)
		s.costs[1]++
		if second.Alert {
			var reasons detector.ReasonList
			for i := 0; i < first.Reasons.Len(); i++ {
				reasons.Append(first.Reasons.At(i))
			}
			for i := 0; i < second.Reasons.Len(); i++ {
				reasons.Append(second.Reasons.At(i))
			}
			return detector.Verdict{
				Alert:   true,
				Score:   min(first.Score, second.Score),
				Reasons: reasons,
			}
		}
		return detector.Verdict{Score: min(first.Score, second.Score)}
	}
}

// InspectInto keeps the arrangement usable anywhere a detector.Detector
// is expected (a cascade can itself feed a pipeline).
func (s *Serial) InspectInto(req *detector.Request, out *detector.Verdict) {
	*out = s.Inspect(req)
}

// Cost implements Topology.
func (s *Serial) Cost() []DetectorCost {
	return []DetectorCost{
		{Detector: s.filter.Name(), Inspected: s.costs[0]},
		{Detector: s.analyzer.Name(), Inspected: s.costs[1]},
	}
}

// Reset implements Topology.
func (s *Serial) Reset() {
	s.filter.Reset()
	s.analyzer.Reset()
	s.costs = [2]uint64{}
}
