package ensemble

import (
	"strconv"
	"testing"
	"time"

	"divscrape/internal/detector"
	"divscrape/internal/logfmt"
)

// scriptedDetector alerts on requests whose path carries its tag, and
// counts how many requests it has inspected — enough to test topology
// routing and cost accounting without real detectors.
type scriptedDetector struct {
	name      string
	tag       string
	inspected int
	resets    int
}

var _ detector.Detector = (*scriptedDetector)(nil)

func (d *scriptedDetector) Name() string { return d.name }
func (d *scriptedDetector) Reset()       { d.resets++; d.inspected = 0 }
func (d *scriptedDetector) Inspect(req *detector.Request) detector.Verdict {
	d.inspected++
	alert := contains(req.Entry.Path, d.tag)
	score := 0.1
	if alert {
		score = 0.9
	}
	return detector.Verdict{Alert: alert, Score: score, Reasons: reasonsIf(alert, d.name)}
}

func (d *scriptedDetector) InspectInto(req *detector.Request, out *detector.Verdict) {
	*out = d.Inspect(req)
}

func reasonsIf(alert bool, name string) detector.ReasonList {
	if alert {
		return detector.ReasonsOf(name)
	}
	return detector.ReasonList{}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func req(path string, seq int) *detector.Request {
	return &detector.Request{
		Seq: uint64(seq),
		Entry: logfmt.Entry{
			Path: path,
			Time: time.Date(2018, 3, 11, 0, 0, seq, 0, time.UTC),
		},
	}
}

func TestParallelValidation(t *testing.T) {
	if _, err := NewParallel(KOutOfN{K: 1}); err == nil {
		t.Error("no detectors accepted")
	}
	if _, err := NewParallel(nil, &scriptedDetector{name: "x"}); err == nil {
		t.Error("nil adjudicator accepted")
	}
}

func TestParallelRunsEveryDetector(t *testing.T) {
	a := &scriptedDetector{name: "a", tag: "/alpha"}
	b := &scriptedDetector{name: "b", tag: "/beta"}
	p, err := NewParallel(KOutOfN{K: 1}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	paths := []string{"/alpha/1", "/beta/2", "/gamma/3", "/alpha/beta"}
	wantAlerts := []bool{true, true, false, true}
	for i, path := range paths {
		got := p.Inspect(req(path, i))
		if got.Alert != wantAlerts[i] {
			t.Errorf("path %s: alert = %v, want %v", path, got.Alert, wantAlerts[i])
		}
	}
	costs := p.Cost()
	if costs[0].Inspected != 4 || costs[1].Inspected != 4 {
		t.Errorf("parallel costs = %+v, want 4/4", costs)
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
	p.Reset()
	if a.resets != 1 || b.resets != 1 {
		t.Error("Reset not propagated")
	}
	if c := p.Cost(); c[0].Inspected != 0 {
		t.Error("Reset left costs")
	}
}

func TestSerialValidation(t *testing.T) {
	d := &scriptedDetector{name: "d"}
	if _, err := NewSerial(nil, d, CascadeOR); err == nil {
		t.Error("nil filter accepted")
	}
	if _, err := NewSerial(d, nil, CascadeOR); err == nil {
		t.Error("nil analyzer accepted")
	}
	if _, err := NewSerial(d, d, SerialMode(0)); err == nil {
		t.Error("invalid mode accepted")
	}
}

func TestSerialCascadeOR(t *testing.T) {
	filter := &scriptedDetector{name: "filter", tag: "/alpha"}
	analyzer := &scriptedDetector{name: "analyzer", tag: "/beta"}
	s, err := NewSerial(filter, analyzer, CascadeOR)
	if err != nil {
		t.Fatal(err)
	}
	// Filter alert short-circuits: the analyzer never sees /alpha.
	if got := s.Inspect(req("/alpha/1", 0)); !got.Alert {
		t.Error("filter alert not final")
	}
	if analyzer.inspected != 0 {
		t.Error("analyzer consulted despite filter alert")
	}
	// Filter pass + analyzer alert → alert.
	if got := s.Inspect(req("/beta/2", 1)); !got.Alert {
		t.Error("analyzer alert not surfaced")
	}
	// Both pass → clean.
	if got := s.Inspect(req("/gamma/3", 2)); got.Alert {
		t.Error("clean traffic alerted")
	}
	costs := s.Cost()
	if costs[0].Inspected != 3 || costs[1].Inspected != 2 {
		t.Errorf("OR costs = %+v, want 3/2", costs)
	}
}

func TestSerialCascadeAND(t *testing.T) {
	filter := &scriptedDetector{name: "filter", tag: "/sus"}
	analyzer := &scriptedDetector{name: "analyzer", tag: "/sus/confirmed"}
	s, err := NewSerial(filter, analyzer, CascadeAND)
	if err != nil {
		t.Fatal(err)
	}
	// Clean traffic never reaches the analyzer.
	if got := s.Inspect(req("/ok", 0)); got.Alert {
		t.Error("clean alerted")
	}
	if analyzer.inspected != 0 {
		t.Error("analyzer consulted on clean traffic")
	}
	// Filter-only suspicion is not confirmed → no alarm.
	if got := s.Inspect(req("/sus/unconfirmed", 1)); got.Alert {
		t.Error("unconfirmed suspicion alerted")
	}
	// Both agree → alarm, with merged reasons.
	got := s.Inspect(req("/sus/confirmed", 2))
	if !got.Alert {
		t.Error("confirmed suspicion not alerted")
	}
	if got.Reasons.Len() == 0 {
		t.Error("confirmed alert has no reasons")
	}
	costs := s.Cost()
	if costs[0].Inspected != 3 || costs[1].Inspected != 2 {
		t.Errorf("AND costs = %+v, want 3/2", costs)
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
	s.Reset()
	if c := s.Cost(); c[0].Inspected != 0 || c[1].Inspected != 0 {
		t.Error("Reset left costs")
	}
}

// Cross-topology invariant: on stateless detectors, serial OR equals
// parallel 1oo2 decisions and serial AND equals parallel 2oo2 decisions.
func TestSerialMatchesVoteSemantics(t *testing.T) {
	paths := make([]string, 60)
	for i := range paths {
		switch i % 4 {
		case 0:
			paths[i] = "/alpha/" + strconv.Itoa(i)
		case 1:
			paths[i] = "/beta/" + strconv.Itoa(i)
		case 2:
			paths[i] = "/alpha/beta/" + strconv.Itoa(i)
		default:
			paths[i] = "/clean/" + strconv.Itoa(i)
		}
	}
	build := func() (Topology, Topology, Topology, Topology) {
		mk := func() (detector.Detector, detector.Detector) {
			return &scriptedDetector{name: "a", tag: "/alpha"},
				&scriptedDetector{name: "b", tag: "/beta"}
		}
		a1, b1 := mk()
		p1, _ := NewParallel(KOutOfN{K: 1}, a1, b1)
		a2, b2 := mk()
		p2, _ := NewParallel(KOutOfN{K: 2}, a2, b2)
		a3, b3 := mk()
		sOR, _ := NewSerial(a3, b3, CascadeOR)
		a4, b4 := mk()
		sAND, _ := NewSerial(a4, b4, CascadeAND)
		return p1, p2, sOR, sAND
	}
	p1, p2, sOR, sAND := build()
	for i, path := range paths {
		r := req(path, i)
		or1, or2 := p1.Inspect(r).Alert, sOR.Inspect(r).Alert
		and1, and2 := p2.Inspect(r).Alert, sAND.Inspect(r).Alert
		if or1 != or2 {
			t.Errorf("%s: serial OR %v != parallel 1oo2 %v", path, or2, or1)
		}
		if and1 != and2 {
			t.Errorf("%s: serial AND %v != parallel 2oo2 %v", path, and2, and1)
		}
	}
	// And the cost saving is real: the serial analyzers inspected less.
	if sORCost := sOR.Cost(); sORCost[1].Inspected >= sORCost[0].Inspected {
		t.Errorf("serial OR second stage saw %d of %d", sORCost[1].Inspected, sORCost[0].Inspected)
	}
	if sANDCost := sAND.Cost(); sANDCost[1].Inspected >= sANDCost[0].Inspected {
		t.Errorf("serial AND second stage saw %d of %d", sANDCost[1].Inspected, sANDCost[0].Inspected)
	}
}

func TestSerialModeString(t *testing.T) {
	if CascadeOR.String() != "cascade-or" || CascadeAND.String() != "cascade-and" {
		t.Error("mode names wrong")
	}
	if SerialMode(9).String() == "" {
		t.Error("unknown mode renders empty")
	}
}
