package ensemble

import (
	"math"
	"testing"
	"testing/quick"

	"divscrape/internal/detector"
)

func v(alert bool, score float64, reasons ...string) detector.Verdict {
	return detector.Verdict{Alert: alert, Score: score, Reasons: detector.ReasonsOf(reasons...)}
}

func TestKOutOfNDecisions(t *testing.T) {
	verdicts := []detector.Verdict{
		v(true, 0.9, "a"),
		v(false, 0.1),
		v(true, 0.5, "c"),
	}
	tests := []struct {
		k    int
		want bool
	}{
		{1, true},
		{2, true},
		{3, false},
	}
	for _, tt := range tests {
		got := KOutOfN{K: tt.k}.Decide(verdicts)
		if got.Alert != tt.want {
			t.Errorf("K=%d alert = %v, want %v", tt.k, got.Alert, tt.want)
		}
	}
}

func TestKOutOfNFusedScoreIsKthLargest(t *testing.T) {
	verdicts := []detector.Verdict{
		v(false, 0.3), v(false, 0.7), v(false, 0.5),
	}
	tests := []struct {
		k    int
		want float64
	}{
		{1, 0.7}, {2, 0.5}, {3, 0.3},
		{9, 0.3}, // k clamped to n
	}
	for _, tt := range tests {
		got := KOutOfN{K: tt.k}.Decide(verdicts)
		if got.Score != tt.want {
			t.Errorf("K=%d fused score = %g, want %g", tt.k, got.Score, tt.want)
		}
	}
}

func TestKOutOfNEdgeCases(t *testing.T) {
	if got := (KOutOfN{K: 0}).Decide([]detector.Verdict{v(true, 1)}); got.Alert {
		t.Error("K=0 should never alert")
	}
	if got := (KOutOfN{K: 1}).Decide(nil); got.Alert {
		t.Error("no verdicts should never alert")
	}
	// Reasons come only from alerting verdicts, and only on alert.
	d := KOutOfN{K: 2}.Decide([]detector.Verdict{v(true, 0.9, "x"), v(false, 0.1, "hidden")})
	if d.Alert || d.Reasons.Len() != 0 {
		t.Errorf("non-alert decision carries reasons: %+v", d)
	}
	if (KOutOfN{K: 2}).Name() == "" {
		t.Error("empty name")
	}
}

// Property: k-out-of-n alerts are monotone decreasing in K, and the fused
// score is monotone decreasing in K.
func TestKOutOfNMonotoneProperty(t *testing.T) {
	f := func(alerts []bool, scores []float64) bool {
		n := len(alerts)
		if len(scores) < n {
			n = len(scores)
		}
		if n == 0 {
			return true
		}
		verdicts := make([]detector.Verdict, n)
		for i := 0; i < n; i++ {
			s := scores[i]
			if s < 0 {
				s = -s
			}
			for s > 1 {
				s /= 10
			}
			verdicts[i] = v(alerts[i], s)
		}
		prevAlert := true
		prevScore := 2.0
		for k := 1; k <= n; k++ {
			d := KOutOfN{K: k}.Decide(verdicts)
			if d.Alert && !prevAlert {
				return false // alert set grew with stricter K
			}
			if d.Score > prevScore {
				return false
			}
			prevAlert = d.Alert
			prevScore = d.Score
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWeighted(t *testing.T) {
	w := Weighted{Weights: []float64{3, 1}, Threshold: 0.5}
	// (3*0.8 + 1*0.0) / 4 = 0.6 >= 0.5
	d := w.Decide([]detector.Verdict{v(true, 0.8, "hot"), v(false, 0)})
	if !d.Alert || math.Abs(d.Score-0.6) > 1e-12 {
		t.Errorf("weighted = %+v, want alert at 0.6", d)
	}
	// (3*0.2 + 1*1.0) / 4 = 0.4 < 0.5
	d2 := w.Decide([]detector.Verdict{v(false, 0.2), v(true, 1.0)})
	if d2.Alert {
		t.Errorf("weighted alerted at %g", d2.Score)
	}
	if w.Name() != "weighted" {
		t.Errorf("Name = %q", w.Name())
	}
	if (Weighted{Label: "custom"}).Name() != "custom" {
		t.Error("custom label ignored")
	}
	// Extra verdicts beyond the weight vector are ignored.
	d3 := Weighted{Weights: []float64{1}, Threshold: 0.5}.Decide(
		[]detector.Verdict{v(false, 0.9), v(true, 0.0)})
	if !d3.Alert {
		t.Error("verdicts beyond weights should be ignored")
	}
	// Zero weights: score 0, no panic.
	d4 := Weighted{Threshold: 0.5}.Decide([]detector.Verdict{v(true, 1)})
	if d4.Score != 0 {
		t.Errorf("zero-weight score = %g", d4.Score)
	}
}
