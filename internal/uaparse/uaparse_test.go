package uaparse

import "testing"

func TestParseClassification(t *testing.T) {
	tests := []struct {
		name       string
		give       string
		wantClass  Class
		wantFamily string
		wantMajor  int
		wantOS     string
		wantMobile bool
	}{
		{
			name:      "chrome on windows",
			give:      "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36",
			wantClass: ClassBrowser, wantFamily: "chrome", wantMajor: 64, wantOS: "windows",
		},
		{
			name:      "firefox on linux",
			give:      "Mozilla/5.0 (X11; Linux x86_64; rv:58.0) Gecko/20100101 Firefox/58.0",
			wantClass: ClassBrowser, wantFamily: "firefox", wantMajor: 58, wantOS: "linux",
		},
		{
			name:      "safari on mac",
			give:      "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_13_3) AppleWebKit/604.5.6 (KHTML, like Gecko) Version/11.0.3 Safari/604.5.6",
			wantClass: ClassBrowser, wantFamily: "safari", wantMajor: 11, wantOS: "macos",
		},
		{
			name:      "mobile chrome on android",
			give:      "Mozilla/5.0 (Linux; Android 8.0.0; Pixel 2 Build/OPD1.170816.004) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.137 Mobile Safari/537.36",
			wantClass: ClassBrowser, wantFamily: "chrome", wantMajor: 64, wantOS: "android", wantMobile: true,
		},
		{
			name:      "edge contains chrome token but is edge",
			give:      "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.167 Safari/537.36 Edge/16.16299",
			wantClass: ClassBrowser, wantFamily: "edge", wantMajor: 16, wantOS: "windows",
		},
		{
			name:      "legacy msie",
			give:      "Mozilla/4.0 (compatible; MSIE 7.0; Windows NT 5.1)",
			wantClass: ClassBrowser, wantFamily: "ie", wantMajor: 7, wantOS: "windows",
		},
		{
			name:      "googlebot",
			give:      "Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)",
			wantClass: ClassSearchBot, wantFamily: "googlebot", wantMajor: 2,
		},
		{
			name:      "bingbot",
			give:      "Mozilla/5.0 (compatible; bingbot/2.0; +http://www.bing.com/bingbot.htm)",
			wantClass: ClassSearchBot, wantFamily: "bingbot", wantMajor: 2,
		},
		{
			name:      "headless chrome",
			give:      "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) HeadlessChrome/64.0.3282.186 Safari/537.36",
			wantClass: ClassHeadless, wantFamily: "headlesschrome", wantMajor: 64, wantOS: "linux",
		},
		{
			name:      "phantomjs",
			give:      "Mozilla/5.0 (Unknown; Linux x86_64) AppleWebKit/538.1 (KHTML, like Gecko) PhantomJS/2.1.1 Safari/538.1",
			wantClass: ClassHeadless, wantFamily: "phantomjs", wantMajor: 2, wantOS: "linux",
		},
		{
			name:      "python requests",
			give:      "python-requests/2.18.4",
			wantClass: ClassTool, wantFamily: "python-requests", wantMajor: 2,
		},
		{
			name:      "curl",
			give:      "curl/7.58.0",
			wantClass: ClassTool, wantFamily: "curl", wantMajor: 7,
		},
		{
			name:      "go http client",
			give:      "Go-http-client/1.1",
			wantClass: ClassTool, wantFamily: "go-http-client", wantMajor: 1,
		},
		{
			name:      "scrapy",
			give:      "Scrapy/1.5.0 (+https://scrapy.org)",
			wantClass: ClassTool, wantFamily: "scrapy", wantMajor: 1,
		},
		{
			name:      "java",
			give:      "Java/1.8.0_161",
			wantClass: ClassTool, wantFamily: "java", wantMajor: 1,
		},
		{
			name:      "pingdom monitor",
			give:      "Pingdom.com_bot_version_1.4_(http://www.pingdom.com/)",
			wantClass: ClassMonitor, wantFamily: "pingdom",
		},
		{
			name:      "uptimerobot",
			give:      "UptimeRobot/2.0 (http://www.uptimerobot.com/)",
			wantClass: ClassMonitor, wantFamily: "uptimerobot",
		},
		{
			name:      "empty",
			give:      "",
			wantClass: ClassEmpty,
		},
		{
			name:      "dash",
			give:      "-",
			wantClass: ClassEmpty,
		},
		{
			name:      "gibberish",
			give:      "totally unknown agent",
			wantClass: ClassUnknown,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Parse(tt.give)
			if got.Class != tt.wantClass {
				t.Errorf("class = %v, want %v", got.Class, tt.wantClass)
			}
			if got.Family != tt.wantFamily {
				t.Errorf("family = %q, want %q", got.Family, tt.wantFamily)
			}
			if got.Major != tt.wantMajor {
				t.Errorf("major = %d, want %d", got.Major, tt.wantMajor)
			}
			if got.OS != tt.wantOS {
				t.Errorf("os = %q, want %q", got.OS, tt.wantOS)
			}
			if got.Mobile != tt.wantMobile {
				t.Errorf("mobile = %v, want %v", got.Mobile, tt.wantMobile)
			}
			if got.Raw != tt.give {
				t.Errorf("raw not preserved")
			}
		})
	}
}

func TestIsAutomated(t *testing.T) {
	tests := []struct {
		class Class
		want  bool
	}{
		{ClassBrowser, false},
		{ClassEmpty, false},
		{ClassUnknown, false},
		{ClassHeadless, true},
		{ClassSearchBot, true},
		{ClassMonitor, true},
		{ClassTool, true},
	}
	for _, tt := range tests {
		if got := (Info{Class: tt.class}).IsAutomated(); got != tt.want {
			t.Errorf("IsAutomated(%v) = %v, want %v", tt.class, got, tt.want)
		}
	}
}

func TestClassString(t *testing.T) {
	for _, c := range []Class{ClassUnknown, ClassEmpty, ClassBrowser,
		ClassHeadless, ClassSearchBot, ClassMonitor, ClassTool} {
		if c.String() == "" {
			t.Errorf("class %d has empty name", int(c))
		}
	}
	if Class(99).String() != "class(99)" {
		t.Errorf("unknown class renders %q", Class(99).String())
	}
}

func TestCheckerViolations(t *testing.T) {
	c := NewChecker(Era2018())
	tests := []struct {
		name string
		ua   string
		want []Violation
	}{
		{
			name: "clean current chrome",
			ua:   "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36",
			want: nil,
		},
		{
			name: "stale chrome",
			ua:   "Mozilla/5.0 (Windows NT 6.1; WOW64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/41.0.2228.0 Safari/537.36",
			want: []Violation{ViolationStaleVersion},
		},
		{
			name: "future chrome",
			ua:   "Mozilla/5.0 (Windows NT 10.0) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/99.0.0.0 Safari/537.36",
			want: []Violation{ViolationFutureVersion},
		},
		{
			name: "stale msie",
			ua:   "Mozilla/4.0 (compatible; MSIE 7.0; Windows NT 5.1)",
			want: []Violation{ViolationStaleVersion},
		},
		{
			name: "tool",
			ua:   "curl/7.58.0",
			want: []Violation{ViolationToolUA},
		},
		{
			name: "declared headless",
			ua:   "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) HeadlessChrome/64.0.3282.186 Safari/537.36",
			want: []Violation{ViolationHeadless},
		},
		{
			name: "empty",
			ua:   "",
			want: []Violation{ViolationEmptyUA},
		},
		{
			name: "browser with no os tokens",
			ua:   "Mozilla/5.0 AppleWebKit/537.36 Chrome/64.0.3282.186 Safari/537.36",
			want: []Violation{ViolationNoOS},
		},
		{
			name: "chrome claim without mozilla preamble",
			ua:   "Chrome/64.0.3282.186 (Windows NT 10.0)",
			want: []Violation{ViolationMalformedMozilla},
		},
		{
			name: "declared bot without contact convention",
			ua:   "Googlebot",
			want: []Violation{ViolationSpoofedBot},
		},
		{
			name: "proper googlebot claim passes structure",
			ua:   "Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)",
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := c.Check(Parse(tt.ua))
			if len(got) != len(tt.want) {
				t.Fatalf("violations = %v, want %v", got, tt.want)
			}
			for i := range tt.want {
				if got[i] != tt.want[i] {
					t.Errorf("violation %d = %v, want %v", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestCheckerCustomEraDisablesIE(t *testing.T) {
	c := NewChecker(Era{ChromeMin: 1, ChromeMax: 200, FirefoxMin: 1, FirefoxMax: 200, SafariMin: 1, SafariMax: 200})
	got := c.Check(Parse("Mozilla/4.0 (compatible; MSIE 7.0; Windows NT 5.1)"))
	if len(got) != 0 {
		t.Errorf("IE check should be disabled with zero IEMin, got %v", got)
	}
}

func BenchmarkParse(b *testing.B) {
	uas := []string{
		"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/64.0.3282.186 Safari/537.36",
		"python-requests/2.18.4",
		"Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Parse(uas[i%len(uas)])
	}
}
