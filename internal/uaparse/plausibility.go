package uaparse

import "strings"

// Era describes the version window a fingerprint checker considers
// plausible for mainstream browsers at the time of the traffic. The
// evaluation models a March 2018 capture, matching the paper's dataset.
type Era struct {
	// ChromeMin/ChromeMax bound plausible Chrome major versions.
	ChromeMin, ChromeMax int
	// FirefoxMin/FirefoxMax bound plausible Firefox major versions.
	FirefoxMin, FirefoxMax int
	// SafariMin/SafariMax bound plausible Safari major versions.
	SafariMin, SafariMax int
	// IEMin/IEMax bound plausible Internet Explorer versions; zero values
	// disable the IE check (custom eras that pre-date the split).
	IEMin, IEMax int
}

// Era2018 is the plausibility window for the paper's March 2018 dataset:
// Chrome 64-65, Firefox 58-59 and Safari 11 were current; anything far
// outside the window is either ancient (a canned UA baked into a scraping
// kit years earlier) or impossible.
func Era2018() Era {
	return Era{
		ChromeMin: 49, ChromeMax: 66,
		FirefoxMin: 45, FirefoxMax: 60,
		SafariMin: 9, SafariMax: 12,
		IEMin: 10, IEMax: 11,
	}
}

// Violation is one fingerprint-consistency problem found in a UA string.
type Violation string

// Fingerprint violations surfaced by Check. These are the per-request UA
// checks a commercial product performs; cross-request checks (UA rotation
// per IP) live in the detector, which has the per-client state.
const (
	// ViolationEmptyUA flags a missing User-Agent header.
	ViolationEmptyUA Violation = "empty-ua"
	// ViolationToolUA flags a declared HTTP library or CLI client.
	ViolationToolUA Violation = "tool-ua"
	// ViolationHeadless flags a declared automation-controlled browser.
	ViolationHeadless Violation = "headless-ua"
	// ViolationStaleVersion flags a browser version far older than the
	// plausibility window (canned UA from an old scraping kit).
	ViolationStaleVersion Violation = "stale-version"
	// ViolationFutureVersion flags a browser version newer than any
	// shipping release (fabricated string).
	ViolationFutureVersion Violation = "future-version"
	// ViolationMalformedMozilla flags browser-family claims without the
	// standard Mozilla/5.0 preamble.
	ViolationMalformedMozilla Violation = "malformed-mozilla"
	// ViolationNoOS flags a browser claim carrying no platform tokens;
	// every mainstream browser advertises its OS.
	ViolationNoOS Violation = "no-os-token"
	// ViolationSpoofedBot flags strings claiming a search-engine identity
	// whose verification fails (checked by the caller against IP ranges;
	// surfaced here when the claim itself is structurally wrong).
	ViolationSpoofedBot Violation = "spoofed-bot"
)

// Checker validates UA internal consistency against an era window.
type Checker struct {
	era Era
}

// NewChecker returns a Checker for the given era.
func NewChecker(era Era) *Checker {
	return &Checker{era: era}
}

// Check returns the consistency violations for a parsed UA. An empty
// result means the string is internally plausible (which does not prove a
// real browser sent it — that is what the challenge flow is for).
func (c *Checker) Check(info Info) []Violation {
	return c.AppendCheck(nil, info)
}

// AppendCheck appends info's consistency violations to dst and returns the
// extended slice, letting hot paths reuse one scratch buffer across
// requests instead of allocating per call.
func (c *Checker) AppendCheck(dst []Violation, info Info) []Violation {
	out := dst
	switch info.Class {
	case ClassEmpty:
		out = append(out, ViolationEmptyUA)
	case ClassTool:
		out = append(out, ViolationToolUA)
	case ClassHeadless:
		out = append(out, ViolationHeadless)
	case ClassBrowser:
		out = c.appendBrowser(out, info)
	case ClassSearchBot:
		// Structural sanity: declared bots should carry the "+http" contact
		// convention; kits that paste just the word "Googlebot" do not.
		if !containsFold(info.Raw, "+http") && !containsFold(info.Raw, "compatible") {
			out = append(out, ViolationSpoofedBot)
		}
	}
	return out
}

// containsFold reports whether s contains sub under ASCII case folding,
// without lowering the whole string into a fresh allocation.
func containsFold(s, sub string) bool {
	return indexFold(s, sub) >= 0
}

// indexFold returns the first case-folded occurrence of sub in s (sub is
// expected lowercase ASCII, as all signature tokens are), or -1. This is
// the byte-wise matcher behind the whole UA parse path: folding happens
// per comparison, so no lowered copy of a hostile, never-cached UA string
// is ever built.
func indexFold(s, sub string) int {
	if len(sub) == 0 {
		return 0
	}
	if len(sub) > len(s) {
		return -1
	}
	c0 := sub[0]
	var u0 byte
	if 'a' <= c0 && c0 <= 'z' {
		u0 = c0 - ('a' - 'A')
	} else {
		u0 = c0
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		if b := s[i]; b != c0 && b != u0 {
			continue
		}
		if equalFoldASCII(s[i:i+len(sub)], sub) {
			return i
		}
	}
	return -1
}

// equalFoldASCII compares equal-length strings case-insensitively; sub is
// expected to be lowercase already.
func equalFoldASCII(s, sub string) bool {
	for i := 0; i < len(sub); i++ {
		c := s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != sub[i] {
			return false
		}
	}
	return true
}

func (c *Checker) appendBrowser(dst []Violation, info Info) []Violation {
	out := dst
	if !strings.HasPrefix(info.Raw, "Mozilla/") {
		out = append(out, ViolationMalformedMozilla)
	}
	if info.OS == "" {
		out = append(out, ViolationNoOS)
	}
	var min, max int
	switch info.Family {
	case "chrome", "edge":
		min, max = c.era.ChromeMin, c.era.ChromeMax
	case "firefox":
		min, max = c.era.FirefoxMin, c.era.FirefoxMax
	case "safari":
		min, max = c.era.SafariMin, c.era.SafariMax
	case "ie":
		if c.era.IEMin == 0 {
			return out
		}
		min, max = c.era.IEMin, c.era.IEMax
	default:
		return out
	}
	switch {
	case info.Major == 0:
		// Version missing entirely from a browser string.
		out = append(out, ViolationMalformedMozilla)
	case info.Major < min:
		out = append(out, ViolationStaleVersion)
	case info.Major > max:
		out = append(out, ViolationFutureVersion)
	}
	return out
}
