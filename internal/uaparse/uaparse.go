// Package uaparse tokenizes and classifies HTTP User-Agent strings and
// scores their plausibility. Commercial bot-mitigation products lean on
// UA signatures three ways: known automation-tool signatures (curl,
// python-requests, Scrapy), verified crawler identities (Googlebot), and
// internal-consistency checks that catch spoofed browser strings. All
// three are implemented here from scratch over a compact signature table.
package uaparse

import (
	"strconv"
	"strings"
)

// Class is the coarse classification of a User-Agent string.
type Class int

const (
	// ClassUnknown is an unclassifiable but non-empty string.
	ClassUnknown Class = iota
	// ClassEmpty is a missing or "-" User-Agent, itself a strong signal.
	ClassEmpty
	// ClassBrowser is a regular interactive browser.
	ClassBrowser
	// ClassHeadless is an automation-controlled browser (HeadlessChrome,
	// PhantomJS, Selenium-tagged strings).
	ClassHeadless
	// ClassSearchBot is a declared search-engine crawler.
	ClassSearchBot
	// ClassMonitor is a declared uptime/monitoring agent.
	ClassMonitor
	// ClassTool is an HTTP library or command-line client.
	ClassTool
)

var classNames = map[Class]string{
	ClassUnknown:   "unknown",
	ClassEmpty:     "empty",
	ClassBrowser:   "browser",
	ClassHeadless:  "headless",
	ClassSearchBot: "search-bot",
	ClassMonitor:   "monitor",
	ClassTool:      "tool",
}

// String returns the lowercase name of the class.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return "class(" + strconv.Itoa(int(c)) + ")"
}

// Info is the parsed view of a User-Agent string.
type Info struct {
	// Raw is the original string.
	Raw string
	// Class is the coarse classification.
	Class Class
	// Family names the product: "chrome", "firefox", "safari", "curl",
	// "googlebot" etc. Empty when unknown.
	Family string
	// Major is the product's major version, 0 when unparsable.
	Major int
	// OS is the coarse platform: "windows", "macos", "linux", "android",
	// "ios", or "" when undetected.
	OS string
	// Mobile reports a mobile browser hint.
	Mobile bool
}

// toolSignatures maps lowercase UA prefixes/tokens of HTTP libraries and
// CLI clients to their family names. Order matters: first match wins.
var toolSignatures = []struct{ token, family string }{
	{"python-requests", "python-requests"},
	{"python-urllib", "python-urllib"},
	{"python/", "python"},
	{"scrapy", "scrapy"},
	{"curl/", "curl"},
	{"wget/", "wget"},
	{"go-http-client", "go-http-client"},
	{"java/", "java"},
	{"okhttp", "okhttp"},
	{"libwww-perl", "libwww-perl"},
	{"httpclient", "httpclient"},
	{"aiohttp", "aiohttp"},
	{"node-fetch", "node-fetch"},
	{"axios", "axios"},
	{"ruby", "ruby"},
	{"php", "php"},
}

// searchBotSignatures maps crawler tokens to families.
var searchBotSignatures = []struct{ token, family string }{
	{"googlebot", "googlebot"},
	{"bingbot", "bingbot"},
	{"slurp", "yahoo-slurp"},
	{"duckduckbot", "duckduckbot"},
	{"baiduspider", "baiduspider"},
	{"yandexbot", "yandexbot"},
	{"applebot", "applebot"},
}

// monitorSignatures maps uptime-monitor tokens to families.
var monitorSignatures = []struct{ token, family string }{
	{"pingdom", "pingdom"},
	{"uptimerobot", "uptimerobot"},
	{"statuscake", "statuscake"},
	{"site24x7", "site24x7"},
	{"nagios", "nagios"},
}

// headlessSignatures tag automation-controlled browsers.
var headlessSignatures = []string{
	"headlesschrome",
	"phantomjs",
	"electron",
	"puppeteer",
	"selenium",
	"webdriver",
	"splash",
}

// Parse classifies a User-Agent string. It never fails: unrecognisable
// strings come back with ClassUnknown.
func Parse(raw string) Info {
	info := Info{Raw: raw}
	if raw == "" || raw == "-" {
		info.Class = ClassEmpty
		return info
	}
	lower := strings.ToLower(raw)

	for _, sig := range monitorSignatures {
		if strings.Contains(lower, sig.token) {
			info.Class = ClassMonitor
			info.Family = sig.family
			return info
		}
	}
	for _, sig := range searchBotSignatures {
		if strings.Contains(lower, sig.token) {
			info.Class = ClassSearchBot
			info.Family = sig.family
			info.Major = versionAfter(lower, sig.token+"/")
			return info
		}
	}
	for _, sig := range headlessSignatures {
		if strings.Contains(lower, sig) {
			info.Class = ClassHeadless
			info.Family = sig
			info.Major = versionAfter(lower, sig+"/")
			info.OS = detectOS(lower)
			return info
		}
	}
	for _, sig := range toolSignatures {
		if strings.Contains(lower, sig.token) {
			info.Class = ClassTool
			info.Family = sig.family
			info.Major = versionAfter(lower, strings.TrimSuffix(sig.token, "/")+"/")
			return info
		}
	}

	// Browser detection. Order matters: Chrome UAs also contain "Safari",
	// Edge UAs contain "Chrome".
	info.OS = detectOS(lower)
	info.Mobile = strings.Contains(lower, "mobile") || info.OS == "android" || info.OS == "ios"
	switch {
	case strings.Contains(lower, "edge/"):
		info.Class = ClassBrowser
		info.Family = "edge"
		info.Major = versionAfter(lower, "edge/")
	case strings.Contains(lower, "chrome/"):
		info.Class = ClassBrowser
		info.Family = "chrome"
		info.Major = versionAfter(lower, "chrome/")
	case strings.Contains(lower, "firefox/"):
		info.Class = ClassBrowser
		info.Family = "firefox"
		info.Major = versionAfter(lower, "firefox/")
	case strings.Contains(lower, "safari/") && strings.Contains(lower, "version/"):
		info.Class = ClassBrowser
		info.Family = "safari"
		info.Major = versionAfter(lower, "version/")
	case strings.Contains(lower, "msie "):
		info.Class = ClassBrowser
		info.Family = "ie"
		info.Major = versionAfter(lower, "msie ")
	case strings.Contains(lower, "opera"):
		info.Class = ClassBrowser
		info.Family = "opera"
		info.Major = versionAfter(lower, "opera/")
	default:
		info.Class = ClassUnknown
	}
	return info
}

// IsAutomated reports whether the class implies non-human traffic by
// declaration (it says nothing about spoofed browser strings).
func (i Info) IsAutomated() bool {
	switch i.Class {
	case ClassHeadless, ClassSearchBot, ClassMonitor, ClassTool:
		return true
	default:
		return false
	}
}

func detectOS(lower string) string {
	switch {
	case strings.Contains(lower, "android"):
		return "android"
	case strings.Contains(lower, "iphone"), strings.Contains(lower, "ipad"), strings.Contains(lower, "ios"):
		return "ios"
	case strings.Contains(lower, "windows"):
		return "windows"
	case strings.Contains(lower, "mac os x"), strings.Contains(lower, "macintosh"):
		return "macos"
	case strings.Contains(lower, "linux"), strings.Contains(lower, "x11"):
		return "linux"
	default:
		return ""
	}
}

// versionAfter extracts the integer major version following the marker.
func versionAfter(lower, marker string) int {
	idx := strings.Index(lower, marker)
	if idx < 0 {
		return 0
	}
	rest := lower[idx+len(marker):]
	end := 0
	for end < len(rest) && rest[end] >= '0' && rest[end] <= '9' {
		end++
	}
	if end == 0 {
		return 0
	}
	v, err := strconv.Atoi(rest[:end])
	if err != nil {
		return 0
	}
	return v
}
