// Package uaparse tokenizes and classifies HTTP User-Agent strings and
// scores their plausibility. Commercial bot-mitigation products lean on
// UA signatures three ways: known automation-tool signatures (curl,
// python-requests, Scrapy), verified crawler identities (Googlebot), and
// internal-consistency checks that catch spoofed browser strings. All
// three are implemented here from scratch over a compact signature table.
package uaparse

import (
	"strconv"
	"strings"
)

// Class is the coarse classification of a User-Agent string.
type Class int

const (
	// ClassUnknown is an unclassifiable but non-empty string.
	ClassUnknown Class = iota
	// ClassEmpty is a missing or "-" User-Agent, itself a strong signal.
	ClassEmpty
	// ClassBrowser is a regular interactive browser.
	ClassBrowser
	// ClassHeadless is an automation-controlled browser (HeadlessChrome,
	// PhantomJS, Selenium-tagged strings).
	ClassHeadless
	// ClassSearchBot is a declared search-engine crawler.
	ClassSearchBot
	// ClassMonitor is a declared uptime/monitoring agent.
	ClassMonitor
	// ClassTool is an HTTP library or command-line client.
	ClassTool
)

var classNames = map[Class]string{
	ClassUnknown:   "unknown",
	ClassEmpty:     "empty",
	ClassBrowser:   "browser",
	ClassHeadless:  "headless",
	ClassSearchBot: "search-bot",
	ClassMonitor:   "monitor",
	ClassTool:      "tool",
}

// String returns the lowercase name of the class.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return "class(" + strconv.Itoa(int(c)) + ")"
}

// Info is the parsed view of a User-Agent string.
type Info struct {
	// Raw is the original string.
	Raw string
	// Class is the coarse classification.
	Class Class
	// Family names the product: "chrome", "firefox", "safari", "curl",
	// "googlebot" etc. Empty when unknown.
	Family string
	// Major is the product's major version, 0 when unparsable.
	Major int
	// OS is the coarse platform: "windows", "macos", "linux", "android",
	// "ios", or "" when undetected.
	OS string
	// Mobile reports a mobile browser hint.
	Mobile bool
}

// signature is one token → family mapping with the marker that precedes
// the product version ("" when the family carries no version). Version
// markers are precomputed at init so matching never concatenates strings
// on the parse path.
type signature struct{ token, family, vmarker string }

// toolSignatures maps lowercase UA prefixes/tokens of HTTP libraries and
// CLI clients to their family names. Order matters: first match wins.
var toolSignatures = []signature{
	{token: "python-requests", family: "python-requests"},
	{token: "python-urllib", family: "python-urllib"},
	{token: "python/", family: "python"},
	{token: "scrapy", family: "scrapy"},
	{token: "curl/", family: "curl"},
	{token: "wget/", family: "wget"},
	{token: "go-http-client", family: "go-http-client"},
	{token: "java/", family: "java"},
	{token: "okhttp", family: "okhttp"},
	{token: "libwww-perl", family: "libwww-perl"},
	{token: "httpclient", family: "httpclient"},
	{token: "aiohttp", family: "aiohttp"},
	{token: "node-fetch", family: "node-fetch"},
	{token: "axios", family: "axios"},
	{token: "ruby", family: "ruby"},
	{token: "php", family: "php"},
}

// searchBotSignatures maps crawler tokens to families.
var searchBotSignatures = []signature{
	{token: "googlebot", family: "googlebot"},
	{token: "bingbot", family: "bingbot"},
	{token: "slurp", family: "yahoo-slurp"},
	{token: "duckduckbot", family: "duckduckbot"},
	{token: "baiduspider", family: "baiduspider"},
	{token: "yandexbot", family: "yandexbot"},
	{token: "applebot", family: "applebot"},
}

// monitorSignatures maps uptime-monitor tokens to families.
var monitorSignatures = []signature{
	{token: "pingdom", family: "pingdom"},
	{token: "uptimerobot", family: "uptimerobot"},
	{token: "statuscake", family: "statuscake"},
	{token: "site24x7", family: "site24x7"},
	{token: "nagios", family: "nagios"},
}

// headlessSignatures tag automation-controlled browsers.
var headlessSignatures = []signature{
	{token: "headlesschrome", family: "headlesschrome"},
	{token: "phantomjs", family: "phantomjs"},
	{token: "electron", family: "electron"},
	{token: "puppeteer", family: "puppeteer"},
	{token: "selenium", family: "selenium"},
	{token: "webdriver", family: "webdriver"},
	{token: "splash", family: "splash"},
}

func init() {
	// The version marker is "<token>/": for tokens already ending in the
	// slash it is the token itself. Building these once here keeps the
	// parse path free of string concatenation.
	tables := [...][]signature{toolSignatures, searchBotSignatures, headlessSignatures}
	for _, sigs := range tables {
		for i := range sigs {
			t := strings.TrimSuffix(sigs[i].token, "/")
			sigs[i].vmarker = t + "/"
		}
	}
}

// Parse classifies a User-Agent string. It never fails: unrecognisable
// strings come back with ClassUnknown. Matching is byte-wise with ASCII
// case folding — no lowered copy of the input is ever allocated, which is
// what keeps enrichment cheap under adversarial User-Agent churn where
// every hostile string misses the cache.
func Parse(raw string) Info {
	info := Info{Raw: raw}
	if raw == "" || raw == "-" {
		info.Class = ClassEmpty
		return info
	}

	for i := range monitorSignatures {
		if containsFold(raw, monitorSignatures[i].token) {
			info.Class = ClassMonitor
			info.Family = monitorSignatures[i].family
			return info
		}
	}
	for i := range searchBotSignatures {
		if containsFold(raw, searchBotSignatures[i].token) {
			info.Class = ClassSearchBot
			info.Family = searchBotSignatures[i].family
			info.Major = versionAfter(raw, searchBotSignatures[i].vmarker)
			return info
		}
	}
	for i := range headlessSignatures {
		if containsFold(raw, headlessSignatures[i].token) {
			info.Class = ClassHeadless
			info.Family = headlessSignatures[i].family
			info.Major = versionAfter(raw, headlessSignatures[i].vmarker)
			info.OS = detectOS(raw)
			return info
		}
	}
	for i := range toolSignatures {
		if containsFold(raw, toolSignatures[i].token) {
			info.Class = ClassTool
			info.Family = toolSignatures[i].family
			info.Major = versionAfter(raw, toolSignatures[i].vmarker)
			return info
		}
	}

	// Browser detection. Order matters: Chrome UAs also contain "Safari",
	// Edge UAs contain "Chrome".
	info.OS = detectOS(raw)
	info.Mobile = containsFold(raw, "mobile") || info.OS == "android" || info.OS == "ios"
	switch {
	case containsFold(raw, "edge/"):
		info.Class = ClassBrowser
		info.Family = "edge"
		info.Major = versionAfter(raw, "edge/")
	case containsFold(raw, "chrome/"):
		info.Class = ClassBrowser
		info.Family = "chrome"
		info.Major = versionAfter(raw, "chrome/")
	case containsFold(raw, "firefox/"):
		info.Class = ClassBrowser
		info.Family = "firefox"
		info.Major = versionAfter(raw, "firefox/")
	case containsFold(raw, "safari/") && containsFold(raw, "version/"):
		info.Class = ClassBrowser
		info.Family = "safari"
		info.Major = versionAfter(raw, "version/")
	case containsFold(raw, "msie "):
		info.Class = ClassBrowser
		info.Family = "ie"
		info.Major = versionAfter(raw, "msie ")
	case containsFold(raw, "opera"):
		info.Class = ClassBrowser
		info.Family = "opera"
		info.Major = versionAfter(raw, "opera/")
	default:
		info.Class = ClassUnknown
	}
	return info
}

// IsAutomated reports whether the class implies non-human traffic by
// declaration (it says nothing about spoofed browser strings).
func (i Info) IsAutomated() bool {
	switch i.Class {
	case ClassHeadless, ClassSearchBot, ClassMonitor, ClassTool:
		return true
	default:
		return false
	}
}

// detectOS spots platform tokens with the same fold-matching Parse uses,
// so the raw string is inspected without a lowered copy.
func detectOS(raw string) string {
	switch {
	case containsFold(raw, "android"):
		return "android"
	case containsFold(raw, "iphone"), containsFold(raw, "ipad"), containsFold(raw, "ios"):
		return "ios"
	case containsFold(raw, "windows"):
		return "windows"
	case containsFold(raw, "mac os x"), containsFold(raw, "macintosh"):
		return "macos"
	case containsFold(raw, "linux"), containsFold(raw, "x11"):
		return "linux"
	default:
		return ""
	}
}

// versionAfter extracts the integer major version following the marker
// (matched case-insensitively; the digits themselves need no folding).
func versionAfter(raw, marker string) int {
	idx := indexFold(raw, marker)
	if idx < 0 {
		return 0
	}
	rest := raw[idx+len(marker):]
	end := 0
	for end < len(rest) && rest[end] >= '0' && rest[end] <= '9' {
		end++
	}
	if end == 0 {
		return 0
	}
	v, err := strconv.Atoi(rest[:end])
	if err != nil {
		return 0
	}
	return v
}
