// Package divscrape reproduces "Using Diverse Detectors for Detecting
// Malicious Web Scraping Activity" (Marques et al., DSN 2018) as a
// runnable system: a synthetic e-commerce traffic generator emitting
// labelled Apache access logs, independently built scraping detectors —
// a commercial-style fingerprint/reputation/challenge detector (the
// paper's Distil role), a behavioural session-analysis detector (the
// Arcane role) and a semantic trajectory detector judging navigation
// shape against a benign site-walk model — and the analysis machinery
// for alerting diversity, adjudication schemes and deployment topologies.
//
// This package is the public facade: it re-exports the main workflow so
// applications can generate traffic, run any set of the detectors and
// compute the paper's tables without importing internal packages. The
// paper's two tools remain the default (DetectorPair and the no-name
// forms of every entry point are that pair); NewDetectorSet selects
// detectors by name. Specialised use (custom detectors, topologies, ROC
// sweeps) goes through the same types, which alias the implementation
// packages.
//
// Quickstart (sequential, byte-for-byte deterministic):
//
//	gen, _ := divscrape.NewGenerator(divscrape.GeneratorConfig{Seed: 1, Duration: 6 * time.Hour})
//	pair, _ := divscrape.NewDetectorPair()
//	summary, _ := divscrape.Analyze(gen, pair)
//	fmt.Println(summary.Contingency.Both, summary.Contingency.Neither)
//
// Multi-core quickstart (sharded; same results, higher throughput):
//
//	gen, _ := divscrape.NewGenerator(divscrape.GeneratorConfig{Seed: 1, Duration: 6 * time.Hour})
//	summary, _ := divscrape.AnalyzeSharded(gen, 0) // 0 → GOMAXPROCS shards
//
// The detection pipeline offers four execution modes. Sequential runs on
// one goroutine and is the reference; pick it for debugging and
// single-core replays. Concurrent gives each detector its own goroutine;
// it is kept as a model of the paper's deployment shape, not a
// throughput choice. Sharded partitions traffic by client IP across
// GOMAXPROCS worker shards with private detector instances and restores
// stream order on output — byte-identical to Sequential. ShardedRelaxed
// drops that final reorder: shards deliver independently, preserving
// per-client order and the whole-stream verdict multiset but not the
// cross-client interleaving — the highest-throughput mode, and every
// aggregate the paper reports is order-free, so AnalyzeShardedRelaxed
// still reproduces Analyze's tables exactly. Because all per-client
// state follows the client onto one shard, every mode judges every
// request identically — the modes trade delivery-order guarantees for
// throughput, never accuracy.
package divscrape

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"divscrape/internal/arcane"
	"divscrape/internal/detector"
	"divscrape/internal/diversity"
	"divscrape/internal/evaluate"
	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
	"divscrape/internal/metrics"
	"divscrape/internal/mitigate"
	"divscrape/internal/pipeline"
	"divscrape/internal/sentinel"
	"divscrape/internal/statecodec"
	"divscrape/internal/stream"
	"divscrape/internal/trajectory"
	"divscrape/internal/workload"
)

// Core request/verdict vocabulary, shared by every component.
type (
	// Entry is one Apache access-log record (Combined Log Format).
	Entry = logfmt.Entry
	// Request is an entry enriched with parse results for detectors.
	Request = detector.Request
	// Verdict is a detector's per-request judgement.
	Verdict = detector.Verdict
	// ReasonList is the fixed-capacity, allocation-free list of interned
	// reason strings a Verdict carries.
	ReasonList = detector.ReasonList
	// Detector is the streaming detector contract.
	Detector = detector.Detector
	// Label is the generator's ground truth for one request.
	Label = detector.Label
	// Archetype identifies the kind of actor behind a request.
	Archetype = detector.Archetype
	// Event is one generated request with its ground truth.
	Event = workload.Event
	// GeneratorConfig parameterises traffic generation.
	GeneratorConfig = workload.Config
	// Profile is the traffic mix.
	Profile = workload.Profile
	// Contingency is the both/neither/only alert-agreement table
	// (the paper's Table 2).
	Contingency = diversity.Contingency
	// Confusion is a labelled confusion matrix with the usual metrics.
	Confusion = evaluate.Confusion
)

// Factory constructs a fresh, independent detector instance; the sharded
// pipeline uses one factory per detector to give every shard private
// state.
type Factory = detector.Factory

// Generator produces labelled synthetic traffic.
type Generator = workload.Generator

// NewGenerator builds a traffic generator; zero-value config fields take
// calibrated defaults (paper-shaped mix, 8-day window).
func NewGenerator(cfg GeneratorConfig) (*Generator, error) {
	return workload.NewGenerator(cfg)
}

// CalibratedProfile returns the traffic mix tuned to the paper's dataset
// shape; scale multiplies actor populations.
func CalibratedProfile(scale float64) Profile {
	return workload.CalibratedProfile(scale)
}

// Detector registry: the named, CLI-selectable constructors. Each factory
// builds a fresh instance with its calibrated defaults.
var detectorRegistry = map[string]Factory{
	"sentinel":   func() (Detector, error) { return sentinel.New(sentinel.Config{}) },
	"arcane":     func() (Detector, error) { return arcane.New(arcane.Config{}) },
	"trajectory": func() (Detector, error) { return trajectory.New(trajectory.Config{}) },
}

// DefaultDetectors is the paper's pair in report order: the commercial
// role first, the behavioural role second. Every entry point that takes
// no detector names analyses this set.
var DefaultDetectors = []string{"sentinel", "arcane"}

// DetectorNames returns every registered detector name, sorted.
func DetectorNames() []string {
	names := make([]string, 0, len(detectorRegistry))
	for name := range detectorRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// FactoriesFor resolves detector names (see DetectorNames) to factories,
// preserving order. No names selects DefaultDetectors.
func FactoriesFor(names ...string) ([]Factory, error) {
	if len(names) == 0 {
		names = DefaultDetectors
	}
	fs := make([]Factory, len(names))
	for i, name := range names {
		f, ok := detectorRegistry[name]
		if !ok {
			return nil, fmt.Errorf("divscrape: unknown detector %q (have %v)", name, DetectorNames())
		}
		fs[i] = f
	}
	return fs, nil
}

// DetectorSet is an ordered list of detectors sharing one enricher, ready
// to inspect a request stream in timestamp order. Index i of every
// verdict slice in the API refers to Detectors[i]. DetectorPair is the
// fixed two-detector view of the same machinery.
type DetectorSet struct {
	// Detectors are inspected in order on every request.
	Detectors []Detector

	enricher *detector.Enricher
}

// NewDetectorSet builds the named detectors (see DetectorNames) with
// their calibrated defaults and a shared reputation feed. No names
// selects the paper's pair, DefaultDetectors.
func NewDetectorSet(names ...string) (*DetectorSet, error) {
	factories, err := FactoriesFor(names...)
	if err != nil {
		return nil, err
	}
	dets := make([]Detector, len(factories))
	for i, f := range factories {
		if dets[i], err = f(); err != nil {
			return nil, fmt.Errorf("divscrape: build detector: %w", err)
		}
	}
	return &DetectorSet{
		Detectors: dets,
		enricher:  detector.NewEnricher(iprep.BuildFeed()),
	}, nil
}

// Len returns the number of detectors.
func (s *DetectorSet) Len() int { return len(s.Detectors) }

// Names returns the detectors' names in inspection order.
func (s *DetectorSet) Names() []string {
	names := make([]string, len(s.Detectors))
	for i, d := range s.Detectors {
		names[i] = d.Name()
	}
	return names
}

// InspectInto enriches one log entry and writes one verdict per detector
// into out, which must hold at least Len() elements. Entries must arrive
// in timestamp order. Every consumed verdict slot is fully overwritten;
// the call performs no allocations in steady state.
func (s *DetectorSet) InspectInto(entry Entry, out []Verdict) {
	var req Request
	s.enricher.EnrichInto(&req, entry)
	for i, d := range s.Detectors {
		d.InspectInto(&req, &out[i])
	}
}

// Inspect is InspectInto with a freshly allocated verdict slice.
func (s *DetectorSet) Inspect(entry Entry) []Verdict {
	out := make([]Verdict, len(s.Detectors))
	s.InspectInto(entry, out)
	return out
}

// Enrich converts one log entry into the Request form detectors consume,
// for callers that drive the detectors individually.
func (s *DetectorSet) Enrich(entry Entry) Request {
	return s.enricher.Enrich(entry)
}

// Reset clears all detector state.
func (s *DetectorSet) Reset() {
	for _, d := range s.Detectors {
		d.Reset()
	}
	s.enricher.Reset()
}

// EvictBefore proactively drops every detector's per-client state
// untouched since cutoff, returning the number of sessions evicted.
// Verdict-neutral while cutoff trails stream time by at least the
// detectors' idle timeouts.
func (s *DetectorSet) EvictBefore(cutoff time.Time) int {
	n := 0
	for _, d := range s.Detectors {
		if ev, ok := d.(Evictable); ok {
			n += ev.EvictBefore(cutoff)
		}
	}
	return n
}

// SnapshotInto serialises the set's state through a statecodec.Writer.
// The frame is the one DetectorPair has always written — a tagged block
// holding the enricher followed by each detector's name and state — so a
// pair snapshot and a (sentinel, arcane) set snapshot are the same bytes.
func (s *DetectorSet) SnapshotInto(w *statecodec.Writer) error {
	w.Tag(tagPair)
	s.enricher.SnapshotInto(w)
	for _, d := range s.Detectors {
		sn, ok := d.(statecodec.Snapshotter)
		if !ok {
			return fmt.Errorf("divscrape: detector %s does not support snapshots", d.Name())
		}
		w.String(d.Name())
		sn.SnapshotInto(w)
	}
	return w.Err()
}

// RestoreFrom rebuilds the set's state from a snapshot written by a set
// with the same detectors (names and configuration). On failure the set
// is Reset — empty state, never a half-restored mix of restored and
// fresh detectors.
func (s *DetectorSet) RestoreFrom(r *statecodec.Reader) error {
	if err := s.restoreFrom(r); err != nil {
		s.Reset()
		return err
	}
	return nil
}

func (s *DetectorSet) restoreFrom(r *statecodec.Reader) error {
	if err := r.Expect(tagPair); err != nil {
		return err
	}
	if err := s.enricher.RestoreFrom(r); err != nil {
		return err
	}
	for _, d := range s.Detectors {
		sn, ok := d.(statecodec.Snapshotter)
		if !ok {
			return fmt.Errorf("divscrape: detector %s does not support snapshots", d.Name())
		}
		name := r.String()
		if err := r.Err(); err != nil {
			return err
		}
		if name != d.Name() {
			return fmt.Errorf("%w: snapshot holds detector %q, set has %q",
				statecodec.ErrCorrupt, name, d.Name())
		}
		if err := sn.RestoreFrom(r); err != nil {
			return err
		}
	}
	return r.Err()
}

// DetectorPair is the paper's two tools, ready to inspect a request
// stream in timestamp order.
type DetectorPair struct {
	// Commercial is the fingerprint/reputation/challenge detector
	// (Distil role).
	Commercial Detector
	// Behavioural is the session-analysis detector (Arcane role).
	Behavioural Detector

	enricher *detector.Enricher
}

// NewDetectorPair builds both detectors with their calibrated defaults
// and a shared reputation feed.
func NewDetectorPair() (*DetectorPair, error) {
	set, err := NewDetectorSet()
	if err != nil {
		return nil, err
	}
	return &DetectorPair{
		Commercial:  set.Detectors[0],
		Behavioural: set.Detectors[1],
		enricher:    set.enricher,
	}, nil
}

// asSet returns the set view of the pair, sharing detectors and enricher.
func (p *DetectorPair) asSet() *DetectorSet {
	return &DetectorSet{
		Detectors: []Detector{p.Commercial, p.Behavioural},
		enricher:  p.enricher,
	}
}

// MaxReasons is the number of explanation slots a Verdict carries inline.
const MaxReasons = detector.MaxReasons

// Inspect enriches one log entry and returns both verdicts. Entries must
// arrive in timestamp order.
func (p *DetectorPair) Inspect(entry Entry) (commercial, behavioural Verdict) {
	var req Request
	p.enricher.EnrichInto(&req, entry)
	p.Commercial.InspectInto(&req, &commercial)
	p.Behavioural.InspectInto(&req, &behavioural)
	return commercial, behavioural
}

// InspectInto is Inspect writing into caller-owned verdicts, the
// allocation-free form hot loops use. Every field of both verdicts is
// overwritten.
func (p *DetectorPair) InspectInto(entry Entry, commercial, behavioural *Verdict) {
	var req Request
	p.enricher.EnrichInto(&req, entry)
	p.Commercial.InspectInto(&req, commercial)
	p.Behavioural.InspectInto(&req, behavioural)
}

// Enrich converts one log entry into the Request form detectors consume,
// for callers that drive the detectors individually (e.g. to build serial
// deployment topologies).
func (p *DetectorPair) Enrich(entry Entry) Request {
	return p.enricher.Enrich(entry)
}

// Reset clears all detector state.
func (p *DetectorPair) Reset() {
	p.Commercial.Reset()
	p.Behavioural.Reset()
	p.enricher.Reset()
}

// Durable state plane: the pair's full detection state — both detectors'
// per-client histories plus the enrichment sequence counter — serialises
// through the versioned state codec, so session memory survives process
// restarts and long-running campaigns are judged across them. See
// internal/statecodec for the format and internal/pipeline for the
// equivalent Checkpoint/ResumeFrom on pipelines.

// tagPair opens a detector-pair block in a snapshot.
const tagPair uint16 = 0x5041

// SnapshotInto serialises the pair's state through a statecodec.Writer,
// for callers composing larger snapshots. Most callers want Snapshot.
func (p *DetectorPair) SnapshotInto(w *statecodec.Writer) error {
	return p.asSet().SnapshotInto(w)
}

// RestoreFrom rebuilds the pair's state from a snapshot written by a
// pair with the same detectors (names and configuration). On failure the
// pair is Reset — empty state, never a half-restored mix of one restored
// and one fresh detector.
func (p *DetectorPair) RestoreFrom(r *statecodec.Reader) error {
	return p.asSet().RestoreFrom(r)
}

// Snapshot writes the pair's full detection state to w as a versioned,
// checksummed container. The snapshot captures every per-client session
// history, so a replay resumed from it continues exactly where this
// process stopped.
func Snapshot(w io.Writer, pair *DetectorPair) error {
	sw := statecodec.NewWriter()
	if err := pair.SnapshotInto(sw); err != nil {
		return fmt.Errorf("divscrape: snapshot: %w", err)
	}
	if err := statecodec.Encode(w, sw); err != nil {
		return fmt.Errorf("divscrape: snapshot: %w", err)
	}
	return nil
}

// Resume builds a calibrated detector pair and restores the state
// Snapshot wrote. Wrong-version snapshots fail with a typed
// *statecodec.VersionError; corrupt ones with statecodec.ErrCorrupt or
// statecodec.ErrChecksum — never a panic.
func Resume(r io.Reader) (*DetectorPair, error) {
	pair, err := NewDetectorPair()
	if err != nil {
		return nil, err
	}
	sr, err := statecodec.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("divscrape: resume: %w", err)
	}
	if err := pair.RestoreFrom(sr); err != nil {
		return nil, fmt.Errorf("divscrape: resume: %w", err)
	}
	return pair, nil
}

// SnapshotSet writes a detector set's full detection state to w in the
// same container format Snapshot uses; a default set's snapshot is
// byte-identical to the pair's.
func SnapshotSet(w io.Writer, set *DetectorSet) error {
	sw := statecodec.NewWriter()
	if err := set.SnapshotInto(sw); err != nil {
		return fmt.Errorf("divscrape: snapshot: %w", err)
	}
	if err := statecodec.Encode(w, sw); err != nil {
		return fmt.Errorf("divscrape: snapshot: %w", err)
	}
	return nil
}

// ResumeSet builds a calibrated detector set for names (default set when
// empty) and restores the state SnapshotSet — or, for the default pair of
// detectors, Snapshot — wrote. Failure modes match Resume.
func ResumeSet(r io.Reader, names ...string) (*DetectorSet, error) {
	set, err := NewDetectorSet(names...)
	if err != nil {
		return nil, err
	}
	sr, err := statecodec.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("divscrape: resume: %w", err)
	}
	if err := set.RestoreFrom(sr); err != nil {
		return nil, fmt.Errorf("divscrape: resume: %w", err)
	}
	return set, nil
}

// SnapshotVersionError is the typed failure a snapshot written by an
// incompatible format version resumes with (errors.As to inspect both
// versions).
type SnapshotVersionError = statecodec.VersionError

// Snapshot decode failures, re-exported for errors.Is without importing
// the internal codec.
var (
	// ErrSnapshotCorrupt reports structurally invalid snapshot contents.
	ErrSnapshotCorrupt = statecodec.ErrCorrupt
	// ErrSnapshotChecksum reports a snapshot whose payload was damaged.
	ErrSnapshotChecksum = statecodec.ErrChecksum
)

// DetectorConfusion is one detector's labelled confusion matrix inside a
// Summary, tagged with the detector's name so N-way summaries stay
// self-describing.
type DetectorConfusion struct {
	// Name is the detector's Name().
	Name string
	// Confusion is the labelled confusion matrix; it stays zero when the
	// stream carries no labels.
	Confusion Confusion
}

// Summary is the outcome of analysing one traffic stream with a detector
// set. The zero value is usable only as a Merge target.
type Summary struct {
	// Total is the number of requests analysed.
	Total uint64
	// Contingency is the paper's Table 2 over the stream for the first
	// two detectors in inspection order (A = Detectors[0], B =
	// Detectors[1] — the commercial and behavioural roles of the default
	// pair). Larger sets still report this leading pair here; the E-series
	// experiments compute the full pairwise tables.
	Contingency Contingency
	// Detectors holds one labelled confusion matrix per detector, in
	// inspection order.
	Detectors []DetectorConfusion
	// Labelled reports whether ground truth was available.
	Labelled bool
}

// newSummary builds an empty summary shaped for the named detectors.
func newSummary(names []string, labelled bool) *Summary {
	s := &Summary{Labelled: labelled, Detectors: make([]DetectorConfusion, len(names))}
	for i, n := range names {
		s.Detectors[i].Name = n
	}
	return s
}

// record folds one request's verdicts (one per detector, in inspection
// order) into the summary.
func (s *Summary) record(verdicts []Verdict, malicious bool) {
	s.Total++
	if len(verdicts) >= 2 {
		s.Contingency.Add(verdicts[0].Alert, verdicts[1].Alert)
	}
	if s.Labelled {
		for i := range verdicts {
			s.Detectors[i].Confusion.Add(verdicts[i].Alert, malicious)
		}
	}
}

// Commercial returns the first detector's labelled confusion matrix — the
// pair-shaped view the reports print. Zero when the summary holds no
// detectors.
func (s *Summary) Commercial() Confusion { return s.confusionAt(0) }

// Behavioural returns the second detector's labelled confusion matrix.
// Zero when the summary holds fewer than two detectors.
func (s *Summary) Behavioural() Confusion { return s.confusionAt(1) }

func (s *Summary) confusionAt(i int) Confusion {
	if i < len(s.Detectors) {
		return s.Detectors[i].Confusion
	}
	return Confusion{}
}

// ConfusionOf returns the named detector's labelled confusion matrix.
func (s *Summary) ConfusionOf(name string) (Confusion, bool) {
	for i := range s.Detectors {
		if s.Detectors[i].Name == name {
			return s.Detectors[i].Confusion, true
		}
	}
	return Confusion{}, false
}

// Merge folds another summary's counts into s: totals and every
// per-detector table add, position by position (Labelled is the caller's
// call — it describes the stream, not the counts). The relaxed analysis
// entry points use it to combine per-shard partial summaries; every
// counted field is commutative, so the fold order does not matter.
// Detector slots s does not yet have are adopted wholesale, so merging
// into a zero Summary copies o — the property the reflection test in
// divscrape_merge_test.go pins for every counted field.
func (s *Summary) Merge(o *Summary) {
	s.Total += o.Total
	s.Contingency.Merge(o.Contingency)
	for i := range o.Detectors {
		if i >= len(s.Detectors) {
			s.Detectors = append(s.Detectors, o.Detectors[i])
			continue
		}
		s.Detectors[i].Confusion.Merge(o.Detectors[i].Confusion)
	}
}

// AnalyzeSet streams a generator's traffic through a detector set and
// summarises alerting diversity and labelled accuracy.
func AnalyzeSet(gen *Generator, set *DetectorSet) (*Summary, error) {
	s := newSummary(set.Names(), true)
	verdicts := make([]Verdict, set.Len())
	err := gen.Run(func(ev Event) error {
		set.InspectInto(ev.Entry, verdicts)
		s.record(verdicts, ev.Label.Malicious())
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("divscrape: analyze: %w", err)
	}
	return s, nil
}

// Analyze is AnalyzeSet on the paper's pair.
func Analyze(gen *Generator, pair *DetectorPair) (*Summary, error) {
	return AnalyzeSet(gen, pair.asSet())
}

// AnalyzeLogSet streams an access-log file through a detector set.
// Malformed lines are skipped. No labels are available from a raw log,
// so the summary's confusion matrices stay zero.
func AnalyzeLogSet(r io.Reader, set *DetectorSet) (*Summary, error) {
	s := newSummary(set.Names(), false)
	verdicts := make([]Verdict, set.Len())
	lr := logfmt.NewReader(r, logfmt.ReaderConfig{Policy: logfmt.Skip})
	var e Entry
	for {
		if err := lr.NextInto(&e); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("divscrape: analyze log: %w", err)
		}
		set.InspectInto(e, verdicts)
		s.record(verdicts, false)
	}
	return s, nil
}

// AnalyzeLog is AnalyzeLogSet on the paper's pair.
func AnalyzeLog(r io.Reader, pair *DetectorPair) (*Summary, error) {
	return AnalyzeLogSet(r, pair.asSet())
}

// DefaultFactories returns one Factory per detector of the calibrated pair
// (commercial first, behavioural second) — the detector list the sharded
// analysis entry points and cmd/scrapedetect hand to the pipeline.
func DefaultFactories() []Factory {
	fs, err := FactoriesFor()
	if err != nil {
		panic(err) // unreachable: DefaultDetectors are always registered
	}
	return fs
}

// newShardedPipeline builds the named detectors as a sharded pipeline.
func newShardedPipeline(shards int, names []string) (*pipeline.Pipeline, error) {
	factories, err := FactoriesFor(names...)
	if err != nil {
		return nil, err
	}
	return pipeline.New(pipeline.Config{
		Factories:  factories,
		Reputation: iprep.BuildFeed(),
		Mode:       pipeline.Sharded,
		Shards:     shards,
	})
}

// AnalyzeShardedSet is AnalyzeSet on the sharded pipeline: the generated
// stream is partitioned by client IP across shards (0 selects
// GOMAXPROCS), each with private instances of the named detectors (none
// selects DefaultDetectors), and merged back into stream order — the
// summary is identical to AnalyzeSet's, only faster on multi-core hosts.
// The events are materialised first so ground-truth labels can be joined
// back by sequence number.
func AnalyzeShardedSet(gen *Generator, shards int, names ...string) (*Summary, error) {
	events, err := gen.Generate()
	if err != nil {
		return nil, fmt.Errorf("divscrape: analyze sharded: generate: %w", err)
	}
	pipe, err := newShardedPipeline(shards, names)
	if err != nil {
		return nil, fmt.Errorf("divscrape: analyze sharded: %w", err)
	}
	s := newSummary(pipe.Detectors(), true)
	i := 0
	src := func() (Entry, error) {
		if i >= len(events) {
			return Entry{}, io.EOF
		}
		e := events[i].Entry
		i++
		return e, nil
	}
	err = pipe.Run(context.Background(), src, func(d pipeline.Decision) error {
		s.record(d.Verdicts, events[d.Req.Seq].Label.Malicious())
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("divscrape: analyze sharded: %w", err)
	}
	return s, nil
}

// AnalyzeSharded is AnalyzeShardedSet on the paper's pair.
func AnalyzeSharded(gen *Generator, shards int) (*Summary, error) {
	return AnalyzeShardedSet(gen, shards)
}

// AnalyzeLogShardedSet is AnalyzeLogSet on the sharded pipeline (0 shards
// selects GOMAXPROCS, no names selects DefaultDetectors). Malformed
// lines are skipped; the contingency table is identical to
// AnalyzeLogSet's.
func AnalyzeLogShardedSet(r io.Reader, shards int, names ...string) (*Summary, error) {
	pipe, err := newShardedPipeline(shards, names)
	if err != nil {
		return nil, fmt.Errorf("divscrape: analyze log sharded: %w", err)
	}
	s := newSummary(pipe.Detectors(), false)
	err = pipe.RunReader(context.Background(), r, logfmt.Skip, func(d pipeline.Decision) error {
		s.record(d.Verdicts, false)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("divscrape: analyze log sharded: %w", err)
	}
	return s, nil
}

// AnalyzeLogSharded is AnalyzeLogShardedSet on the paper's pair.
func AnalyzeLogSharded(r io.Reader, shards int) (*Summary, error) {
	return AnalyzeLogShardedSet(r, shards)
}

// newRelaxedPipeline builds the named detectors as a relaxed sharded
// pipeline: per-client total order, no global merge.
func newRelaxedPipeline(shards int, names []string) (*pipeline.Pipeline, error) {
	factories, err := FactoriesFor(names...)
	if err != nil {
		return nil, err
	}
	return pipeline.New(pipeline.Config{
		Factories:  factories,
		Reputation: iprep.BuildFeed(),
		Mode:       pipeline.ShardedRelaxed,
		Shards:     shards,
	})
}

// AnalyzeShardedRelaxedSet is AnalyzeShardedSet without the stream-order
// merge: shards drain into private partial summaries that are folded
// together at the end. Every accumulated quantity is a commutative count
// keyed by the event's sequence number, so the summary is identical to
// AnalyzeSet's and AnalyzeShardedSet's — relaxing delivery order trades
// away only the cross-client interleaving, which no table depends on.
// This is the highest-throughput analysis entry point on multi-core
// hosts.
func AnalyzeShardedRelaxedSet(gen *Generator, shards int, names ...string) (*Summary, error) {
	events, err := gen.Generate()
	if err != nil {
		return nil, fmt.Errorf("divscrape: analyze relaxed: generate: %w", err)
	}
	pipe, err := newRelaxedPipeline(shards, names)
	if err != nil {
		return nil, fmt.Errorf("divscrape: analyze relaxed: %w", err)
	}
	partials := make([]*Summary, pipe.Shards())
	sinks := make([]pipeline.Sink, pipe.Shards())
	for i := range sinks {
		part := newSummary(pipe.Detectors(), true)
		partials[i] = part
		sinks[i] = func(d pipeline.Decision) error {
			part.record(d.Verdicts, events[d.Req.Seq].Label.Malicious())
			return nil
		}
	}
	i := 0
	src := func() (Entry, error) {
		if i >= len(events) {
			return Entry{}, io.EOF
		}
		e := events[i].Entry
		i++
		return e, nil
	}
	if err := pipe.RunRelaxed(context.Background(), src, sinks); err != nil {
		return nil, fmt.Errorf("divscrape: analyze relaxed: %w", err)
	}
	s := newSummary(pipe.Detectors(), true)
	for i := range partials {
		s.Merge(partials[i])
	}
	return s, nil
}

// AnalyzeShardedRelaxed is AnalyzeShardedRelaxedSet on the paper's pair.
func AnalyzeShardedRelaxed(gen *Generator, shards int) (*Summary, error) {
	return AnalyzeShardedRelaxedSet(gen, shards)
}

// AnalyzeLogShardedRelaxedSet is AnalyzeLogSet end to end on the
// parallel plane: a chunked ParallelReader fans the parse across cores
// (malformed lines skipped), the relaxed pipeline fans detection across
// shards, and per-shard partial summaries merge at the end. The
// contingency table is identical to AnalyzeLogSet's.
func AnalyzeLogShardedRelaxedSet(r io.Reader, shards int, names ...string) (*Summary, error) {
	pipe, err := newRelaxedPipeline(shards, names)
	if err != nil {
		return nil, fmt.Errorf("divscrape: analyze log relaxed: %w", err)
	}
	partials := make([]*Summary, pipe.Shards())
	sinks := make([]pipeline.Sink, pipe.Shards())
	for i := range sinks {
		part := newSummary(pipe.Detectors(), false)
		partials[i] = part
		sinks[i] = func(d pipeline.Decision) error {
			part.record(d.Verdicts, false)
			return nil
		}
	}
	lr := logfmt.NewParallelReader(r, logfmt.ParallelConfig{Policy: logfmt.Skip})
	defer lr.Close()
	src := func() (Entry, error) {
		var e Entry
		err := lr.NextInto(&e)
		return e, err
	}
	if err := pipe.RunRelaxed(context.Background(), src, sinks); err != nil {
		return nil, fmt.Errorf("divscrape: analyze log relaxed: %w", err)
	}
	s := newSummary(pipe.Detectors(), false)
	for i := range partials {
		s.Merge(partials[i])
	}
	return s, nil
}

// AnalyzeLogShardedRelaxed is AnalyzeLogShardedRelaxedSet on the paper's
// pair.
func AnalyzeLogShardedRelaxed(r io.Reader, shards int) (*Summary, error) {
	return AnalyzeLogShardedRelaxedSet(r, shards)
}

// WriteDataset streams a generation run to an access log and label
// sidecar, returning the request count.
func WriteDataset(gen *Generator, logW, labelW io.Writer) (uint64, error) {
	return workload.WriteDataset(gen, logW, labelW)
}

// Mitigation: the response plane. Detection decides who is scraping;
// mitigation decides what to do about it. The engine folds adjudicated
// verdicts into per-client enforcement state and walks the
// Allow → Tarpit → Challenge → Block ladder; httpguard embeds one engine
// per traffic shard, and the same types drive offline what-if replays.
type (
	// MitigationPolicy parameterises the response engine.
	MitigationPolicy = mitigate.Policy
	// MitigationAction is one rung of the enforcement ladder.
	MitigationAction = mitigate.Action
	// MitigationAssessment is the adjudicated input to the engine.
	MitigationAssessment = mitigate.Assessment
	// MitigationDecision is the engine's per-request output.
	MitigationDecision = mitigate.Decision
	// MitigationEngine folds the decision stream into enforcement state.
	MitigationEngine = mitigate.Engine
)

// Enforcement ladder rungs, re-exported for callers switching on
// MitigationDecision.Action.
const (
	MitigationAllow     = mitigate.Allow
	MitigationTarpit    = mitigate.Tarpit
	MitigationChallenge = mitigate.Challenge
	MitigationBlock     = mitigate.Block
)

// Live operation: the streaming ingestion plane. A Follower tails an
// actively written access log (surviving rotation and truncation) as a
// pull-based entry source with bounded memory; a Sweeper drives windowed
// TTL eviction across every stateful layer so a long-running deployment's
// memory stays O(clients active in the window); a MetricsRegistry is the
// zero-allocation observability surface (Prometheus text + JSON). See
// `scrapedetect -follow -metrics-addr` for the assembled service and
// httpguard.Guard.DebugHandler for the inline-middleware equivalent.
type (
	// Follower tails a log file as a continuous entry source.
	Follower = stream.Follower
	// FollowerConfig parameterises NewFollower.
	FollowerConfig = stream.FollowerConfig
	// FollowerStats is the follower's progress counter snapshot.
	FollowerStats = stream.FollowerStats
	// Sweeper drives windowed eviction across registered layers.
	Sweeper = stream.Sweeper
	// Evictable is the hook a sweeper drives: drop state untouched since
	// the cutoff. Implemented by the detectors, mitigation engines,
	// session stores and the reputation overlay.
	Evictable = detector.Evictable
	// MetricsRegistry collects counters/gauges/histograms and encodes
	// them allocation-free.
	MetricsRegistry = metrics.Registry
)

// NewFollower opens a tail-style follower on a log path; the file may not
// exist yet (a rotation target).
func NewFollower(cfg FollowerConfig) (*Follower, error) { return stream.NewFollower(cfg) }

// NewSweeper builds a windowed-eviction sweeper; drive it with Observe
// (event time) or Tick (wall clock). A window at or above every
// registered layer's idle timeout keeps eviction verdict-neutral.
func NewSweeper(window, every time.Duration) (*Sweeper, error) {
	return stream.NewSweeper(window, every, nil)
}

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// EvictBefore proactively drops both detectors' per-client state
// untouched since cutoff, returning the number of sessions evicted —
// the pair-level face of the windowed eviction hook. Verdict-neutral
// while cutoff trails stream time by at least the detectors' idle
// timeouts.
func (p *DetectorPair) EvictBefore(cutoff time.Time) int {
	return p.asSet().EvictBefore(cutoff)
}

// NewMitigationEngine validates the policy and builds an engine. Engines
// are single-threaded; shard them alongside detector state.
func NewMitigationEngine(p MitigationPolicy) (*MitigationEngine, error) {
	return mitigate.New(p)
}

// ObservePolicy returns the non-interfering response policy.
func ObservePolicy() MitigationPolicy { return mitigate.Observe() }

// TagPolicy returns the tag-only response policy.
func TagPolicy() MitigationPolicy { return mitigate.Tag() }

// StaticBlockPolicy returns the classic binary block switch.
func StaticBlockPolicy(confirmedOnly bool) MitigationPolicy {
	return mitigate.StaticBlock(confirmedOnly)
}

// GraduatedPolicy returns the calibrated escalation-ladder policy.
func GraduatedPolicy() MitigationPolicy { return mitigate.Graduated() }
