package divscrape_test

import (
	"reflect"
	"testing"

	"divscrape"
)

// fillCounters walks v and sets every uint64 leaf to a distinct nonzero
// value, returning how many it set. It recurses through structs, slices
// and arrays — the shapes Summary is built from.
func fillCounters(v reflect.Value, next *uint64) int {
	switch v.Kind() {
	case reflect.Uint64:
		*next++
		v.SetUint(*next)
		return 1
	case reflect.Struct:
		n := 0
		for i := 0; i < v.NumField(); i++ {
			n += fillCounters(v.Field(i), next)
		}
		return n
	case reflect.Slice, reflect.Array:
		n := 0
		for i := 0; i < v.Len(); i++ {
			n += fillCounters(v.Index(i), next)
		}
		return n
	default:
		return 0
	}
}

// sumCounters adds up every uint64 leaf, mirroring fillCounters' walk.
func sumCounters(v reflect.Value) uint64 {
	switch v.Kind() {
	case reflect.Uint64:
		return v.Uint()
	case reflect.Struct:
		var n uint64
		for i := 0; i < v.NumField(); i++ {
			n += sumCounters(v.Field(i))
		}
		return n
	case reflect.Slice, reflect.Array:
		var n uint64
		for i := 0; i < v.Len(); i++ {
			n += sumCounters(v.Index(i))
		}
		return n
	default:
		return 0
	}
}

// TestMergeFoldsEveryCountedField pins Summary.Merge against the bug this
// PR fixed: a counted field added to Summary (or nested inside it) that
// Merge silently drops. Every uint64 leaf reachable from Summary is set
// to a distinct nonzero value by reflection; merging into a zero Summary
// must reproduce all of them, and merging twice must exactly double them.
// A new counter anywhere in the struct tree is covered automatically —
// forgetting it in Merge fails this test, not a production report.
func TestMergeFoldsEveryCountedField(t *testing.T) {
	src := &divscrape.Summary{
		Labelled:  true,
		Detectors: make([]divscrape.DetectorConfusion, 3),
	}
	for i := range src.Detectors {
		src.Detectors[i].Name = []string{"sentinel", "arcane", "trajectory"}[i]
	}
	var seq uint64
	leaves := fillCounters(reflect.ValueOf(src).Elem(), &seq)
	if leaves < 17 {
		// 1 Total + 4 Contingency + 3×4 Confusion: the floor for the
		// current shape; more is fine, fewer means the walk went blind.
		t.Fatalf("reflection walk found only %d counted fields", leaves)
	}

	dst := &divscrape.Summary{}
	dst.Merge(src)
	dst.Labelled = src.Labelled // descriptive flag, deliberately not merged
	if !reflect.DeepEqual(dst, src) {
		t.Fatalf("merge into zero summary lost counts:\n got  %+v\n want %+v", dst, src)
	}

	dst.Merge(src)
	got := sumCounters(reflect.ValueOf(dst).Elem())
	want := 2 * sumCounters(reflect.ValueOf(src).Elem())
	if got != want {
		t.Fatalf("second merge dropped counts: leaf sum %d, want %d", got, want)
	}
}
