// Benchmarks regenerating every table the paper reports (E1-E4) and every
// extension experiment its Section V plans (E5-E10), plus ablations of
// the detectors' design choices. Each iteration performs the full
// measurement — dataset generation, both detectors, analysis — at the
// deterministic bench scale, and reports the key result figures as
// benchmark metrics so `go test -bench` output doubles as a results
// record.
package divscrape_test

import (
	"context"
	"io"
	"sync"
	"testing"
	"time"

	"divscrape/internal/arcane"
	"divscrape/internal/detector"
	"divscrape/internal/experiments"
	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
	"divscrape/internal/pipeline"
	"divscrape/internal/sentinel"
	"divscrape/internal/statecodec"
	"divscrape/internal/trace"
	"divscrape/internal/trajectory"
	"divscrape/internal/workload"
)

// executeBench runs the single-pass measurement once per iteration and
// returns the last run for metric reporting.
func executeBench(b *testing.B) *experiments.Run {
	b.Helper()
	var run *experiments.Run
	for i := 0; i < b.N; i++ {
		r, err := experiments.Execute(experiments.BenchScale)
		if err != nil {
			b.Fatal(err)
		}
		run = r
	}
	b.SetBytes(int64(run.Total))
	return run
}

// BenchmarkTable1 regenerates the paper's Table 1: total requests and
// per-tool alert counts.
func BenchmarkTable1(b *testing.B) {
	run := executeBench(b)
	tbl := experiments.Table1(run)
	if tbl.Rows() != 3 {
		b.Fatalf("table 1 rows = %d", tbl.Rows())
	}
	b.ReportMetric(float64(run.Cont.TotalA())/float64(run.Total), "alertshareA")
	b.ReportMetric(float64(run.Cont.TotalB())/float64(run.Total), "alertshareB")
}

// BenchmarkTable2 regenerates the paper's Table 2: the both/neither/only
// contingency.
func BenchmarkTable2(b *testing.B) {
	run := executeBench(b)
	tbl := experiments.Table2(run)
	if tbl.Rows() != 4 {
		b.Fatalf("table 2 rows = %d", tbl.Rows())
	}
	b.ReportMetric(float64(run.Cont.Both)/float64(run.Total), "bothshare")
	b.ReportMetric(float64(run.Cont.AOnly)/float64(run.Total), "aonlyshare")
	b.ReportMetric(float64(run.Cont.BOnly)/float64(run.Total), "bonlyshare")
}

// BenchmarkTable3 regenerates the paper's Table 3: alerted requests by
// HTTP status, overall.
func BenchmarkTable3(b *testing.B) {
	run := executeBench(b)
	tbl := experiments.Table3(run)
	if tbl.Rows() == 0 {
		b.Fatal("table 3 empty")
	}
	b.ReportMetric(float64(tbl.Rows()), "statusrows")
}

// BenchmarkTable4 regenerates the paper's Table 4: per-status counts of
// single-tool alerts.
func BenchmarkTable4(b *testing.B) {
	run := executeBench(b)
	tbl := experiments.Table4(run)
	b.ReportMetric(float64(tbl.Rows()), "statusrows")
}

// BenchmarkLabelledEval regenerates E5: the sensitivity/specificity
// analysis the paper names as its next step.
func BenchmarkLabelledEval(b *testing.B) {
	run := executeBench(b)
	if experiments.Table5(run).Rows() == 0 {
		b.Fatal("table 5 empty")
	}
	b.ReportMetric(run.ConfA.Sensitivity(), "sensA")
	b.ReportMetric(run.ConfB.Sensitivity(), "sensB")
	b.ReportMetric(run.ConfA.Specificity(), "specA")
	b.ReportMetric(run.ConfB.Specificity(), "specB")
}

// BenchmarkAdjudication regenerates E6: 1-out-of-2 vs 2-out-of-2 vs
// weighted fusion.
func BenchmarkAdjudication(b *testing.B) {
	run := executeBench(b)
	if experiments.Table6(run).Rows() == 0 {
		b.Fatal("table 6 empty")
	}
	b.ReportMetric(run.Conf1oo2.Sensitivity(), "sens1oo2")
	b.ReportMetric(run.Conf2oo2.Sensitivity(), "sens2oo2")
	b.ReportMetric(run.Conf1oo2.Specificity(), "spec1oo2")
	b.ReportMetric(run.Conf2oo2.Specificity(), "spec2oo2")
}

// BenchmarkTopologies regenerates E7: parallel vs serial deployments with
// inspection-cost accounting (six full passes per iteration).
func BenchmarkTopologies(b *testing.B) {
	var results []experiments.TopologyResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExecuteTopologies(experiments.BenchScale)
		if err != nil {
			b.Fatal(err)
		}
		results = r
	}
	if experiments.Table7(results).Rows() != 6 {
		b.Fatal("table 7 incomplete")
	}
	for _, r := range results {
		if r.Name == "serial sentinel→arcane OR" {
			b.ReportMetric(float64(r.Costs[1].Inspected)/float64(r.Costs[0].Inspected), "or2ndload")
		}
	}
}

// BenchmarkDisagreement regenerates E8: the per-archetype breakdown of
// single-tool alerts.
func BenchmarkDisagreement(b *testing.B) {
	run := executeBench(b)
	tbl := experiments.Table8(run)
	if tbl.Rows() == 0 {
		b.Fatal("table 8 empty")
	}
	b.ReportMetric(float64(tbl.Rows()), "archetypes")
}

// BenchmarkDiversityMeasures regenerates E9: Yule's Q, disagreement and
// double-fault over alerting and correctness agreement.
func BenchmarkDiversityMeasures(b *testing.B) {
	run := executeBench(b)
	if experiments.Table9(run).Rows() != 5 {
		b.Fatal("table 9 incomplete")
	}
}

// BenchmarkROC regenerates E10: the threshold sweeps over both detectors'
// scores.
func BenchmarkROC(b *testing.B) {
	run := executeBench(b)
	if experiments.Table10(run).Rows() == 0 {
		b.Fatal("table 10 empty")
	}
	b.ReportMetric(run.ROCA.AUC(), "aucA")
	b.ReportMetric(run.ROCB.AUC(), "aucB")
}

// Ablations: re-run the measurement with one design element removed, so
// the contribution of each mechanism is visible in the metrics.

// BenchmarkAblationNoReputation removes the commercial detector's
// reputation feed influence by treating every address as unknown — the
// "what does the blocklist buy" question.
func BenchmarkAblationNoReputation(b *testing.B) {
	// Raising the reputation weight to ~zero is not expressible through
	// Config; instead withhold the feed by running the pair without
	// enrichment. ExecuteOpts keeps the feed, so emulate by raising the
	// alert threshold contribution: compare against a sentinel whose
	// rate/challenge/signature must carry every conviction.
	var run *experiments.Run
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExecuteOpts(experiments.BenchScale, experiments.Options{
			Sentinel: sentinel.Config{AlertThreshold: 0.19}, // reputation-only convictions fall below
		})
		if err != nil {
			b.Fatal(err)
		}
		run = r
	}
	b.SetBytes(int64(run.Total))
	b.ReportMetric(run.ConfA.Sensitivity(), "sensA")
}

// BenchmarkAblationArcaneWarmup sweeps the behavioural detector's warm-up
// length: shorter warm-up shrinks the commercial-only window on scraper
// session starts but risks noise.
func BenchmarkAblationArcaneWarmup(b *testing.B) {
	for _, warmup := range []int{3, 6, 12, 24} {
		b.Run(benchName("warmup", warmup), func(b *testing.B) {
			var run *experiments.Run
			for i := 0; i < b.N; i++ {
				r, err := experiments.ExecuteOpts(experiments.BenchScale, experiments.Options{
					Arcane: arcane.Config{WarmupRequests: warmup},
				})
				if err != nil {
					b.Fatal(err)
				}
				run = r
			}
			b.SetBytes(int64(run.Total))
			b.ReportMetric(run.ConfB.Sensitivity(), "sensB")
			b.ReportMetric(run.ConfB.Specificity(), "specB")
		})
	}
}

// BenchmarkAblationThresholds sweeps both alert thresholds jointly,
// tracing the 1oo2 operating curve the ROC experiment summarises.
func BenchmarkAblationThresholds(b *testing.B) {
	for _, mult := range []int{50, 100, 200} {
		b.Run(benchName("pct", mult), func(b *testing.B) {
			senT := 0.18 * float64(mult) / 100
			arcT := 0.30 * float64(mult) / 100
			var run *experiments.Run
			for i := 0; i < b.N; i++ {
				r, err := experiments.ExecuteOpts(experiments.BenchScale, experiments.Options{
					Sentinel: sentinel.Config{AlertThreshold: senT},
					Arcane:   arcane.Config{AlertThreshold: arcT},
				})
				if err != nil {
					b.Fatal(err)
				}
				run = r
			}
			b.SetBytes(int64(run.Total))
			b.ReportMetric(run.Conf1oo2.Sensitivity(), "sens1oo2")
			b.ReportMetric(run.Conf1oo2.Specificity(), "spec1oo2")
		})
	}
}

func benchName(prefix string, n int) string {
	const digits = "0123456789"
	if n == 0 {
		return prefix + "=0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = digits[n%10]
		n /= 10
	}
	return prefix + "=" + string(buf[i:])
}

// Pipeline throughput benchmarks: the same pre-generated event stream
// replayed through each execution mode. Requests/sec is reported as a
// metric so mode comparisons read directly off the bench output;
// allocs/op shows the pooled/flat-vector hot path at work. Sharded's
// advantage over Sequential scales with GOMAXPROCS (≈none on one core, as
// the modes do identical per-request work).

var benchEvents struct {
	once   sync.Once
	events []workload.Event
	// logBytes is the Combined-Log-Format size of the stream — what
	// SetBytes must report so the benchmark's MB/s column means "access
	// log bytes per second", the unit a log pipeline is sized in. (It
	// used to pass the event count, which printed requests-per-second
	// mislabelled as MB/s.)
	logBytes int64
}

func pipelineBenchEvents(b *testing.B) []workload.Event {
	b.Helper()
	benchEvents.once.Do(func() {
		gen, err := workload.NewGenerator(workload.Config{
			Seed:     experiments.BenchScale.Seed,
			Duration: experiments.BenchScale.Duration,
		})
		if err != nil {
			b.Fatal(err)
		}
		benchEvents.events, err = gen.Generate()
		if err != nil {
			b.Fatal(err)
		}
		var line []byte
		for i := range benchEvents.events {
			line = logfmt.AppendCombined(line[:0], &benchEvents.events[i].Entry)
			benchEvents.logBytes += int64(len(line)) + 1 // newline
		}
	})
	if len(benchEvents.events) == 0 {
		b.Fatal("no bench events")
	}
	return benchEvents.events
}

func benchmarkPipelineMode(b *testing.B, mode pipeline.Mode, shards int) {
	events := pipelineBenchEvents(b)
	pipe, err := pipeline.New(pipeline.Config{
		Factories: []detector.Factory{
			func() (detector.Detector, error) { return sentinel.New(sentinel.Config{}) },
			func() (detector.Detector, error) { return arcane.New(arcane.Config{}) },
		},
		Reputation: iprep.BuildFeed(),
		Mode:       mode,
		Shards:     shards,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	started := time.Now()
	for i := 0; i < b.N; i++ {
		pipe.ResetDetectors()
		j := 0
		src := func() (logfmt.Entry, error) {
			if j >= len(events) {
				return logfmt.Entry{}, io.EOF
			}
			e := events[j].Entry
			j++
			return e, nil
		}
		var err error
		if mode == pipeline.ShardedRelaxed {
			// Independent per-shard sinks — the mode's whole point is that
			// no merge (and no shared sink lock) stands between a shard
			// and its output.
			sinks := make([]pipeline.Sink, pipe.Shards())
			for s := range sinks {
				sinks[s] = func(pipeline.Decision) error { return nil }
			}
			err = pipe.RunRelaxed(context.Background(), src, sinks)
		} else {
			err = pipe.Run(context.Background(), src, func(pipeline.Decision) error { return nil })
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(started)
	b.SetBytes(benchEvents.logBytes)
	if elapsed > 0 {
		b.ReportMetric(float64(len(events)*b.N)/elapsed.Seconds(), "req/s")
	}
	if mode == pipeline.Sharded || mode == pipeline.ShardedRelaxed {
		// Report the worker count the pipeline actually ran with (the
		// configured count after defaulting), not GOMAXPROCS: recorded
		// results must say what executed, whatever machine ran them.
		b.ReportMetric(float64(pipe.Shards()), "shards")
	}
}

func BenchmarkPipelineSequential(b *testing.B) { benchmarkPipelineMode(b, pipeline.Sequential, 0) }
func BenchmarkPipelineConcurrent(b *testing.B) { benchmarkPipelineMode(b, pipeline.Concurrent, 0) }
func BenchmarkPipelineSharded(b *testing.B)    { benchmarkPipelineMode(b, pipeline.Sharded, 0) }
func BenchmarkPipelineRelaxed(b *testing.B) {
	benchmarkPipelineMode(b, pipeline.ShardedRelaxed, 0)
}

// BenchmarkPipelineShardedMulti pins explicit shard counts, so the
// trajectory of the sharded mode is interpretable on any machine
// regardless of its GOMAXPROCS (the default the bare bench uses).
func BenchmarkPipelineShardedMulti(b *testing.B) {
	b.Run("shards=4", func(b *testing.B) { benchmarkPipelineMode(b, pipeline.Sharded, 4) })
}

// BenchmarkPipelineRelaxedMulti records the relaxed mode's shard scaling
// curve. On a multi-core host the curve should rise toward GOMAXPROCS;
// on a single-core host it is flat (all modes do identical per-request
// work and there is no second core to win), which is itself the honest
// measurement — the structural claim (no merge wall: zero merge stalls,
// zero merge spans) is pinned by the pipeline's relaxed test suite, not
// by this number.
func BenchmarkPipelineRelaxedMulti(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8, 16} {
		b.Run(benchName("shards", shards), func(b *testing.B) {
			benchmarkPipelineMode(b, pipeline.ShardedRelaxed, shards)
		})
	}
}

// BenchmarkPipelineStages replays the stream through the sharded
// pipeline with the tracing plane armed (spans on, flight-record capture
// off) and reports each stage's mean span in nanoseconds plus the
// merge-stall count. This is the observability the ROADMAP's scaling
// item needs: the per-stage breakdown shows where the sharded mode's
// serial section — the sequence-ordered merger — eats the parallel
// speedup, and merge-stalls counts how often completed batches waited on
// an earlier sequence number.
func BenchmarkPipelineStages(b *testing.B) {
	events := pipelineBenchEvents(b)
	const shards = 4
	tracer := trace.New(trace.Config{
		Detectors: []string{"sentinel", "arcane"},
		Shards:    shards,
		Recorder:  trace.RecorderConfig{Head: -1, Rate: -1},
	})
	pipe, err := pipeline.New(pipeline.Config{
		Factories: []detector.Factory{
			func() (detector.Detector, error) { return sentinel.New(sentinel.Config{}) },
			func() (detector.Detector, error) { return arcane.New(arcane.Config{}) },
		},
		Reputation: iprep.BuildFeed(),
		Mode:       pipeline.Sharded,
		Shards:     shards,
		Trace:      tracer,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	started := time.Now()
	for i := 0; i < b.N; i++ {
		pipe.ResetDetectors()
		j := 0
		src := func() (logfmt.Entry, error) {
			if j >= len(events) {
				return logfmt.Entry{}, io.EOF
			}
			e := events[j].Entry
			j++
			return e, nil
		}
		if err := pipe.Run(context.Background(), src, func(pipeline.Decision) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(started)
	b.SetBytes(benchEvents.logBytes)
	if elapsed > 0 {
		b.ReportMetric(float64(len(events)*b.N)/elapsed.Seconds(), "req/s")
	}
	for _, st := range tracer.StageStats() {
		if st.Count == 0 {
			continue
		}
		b.ReportMetric(st.Mean()*1e9, st.Name()+"-ns")
	}
	b.ReportMetric(float64(tracer.MergeStalls())/float64(b.N), "merge-stalls")
}

// BenchmarkSnapshotRestore measures the durable state plane: one
// iteration checkpoints a traffic-warmed sharded pipeline's full
// detection state (every per-client session across both detectors) and
// restores it into a second, differently sharded pipeline — the
// process-restart path. The snapshot size rides along as a metric, so
// the record tracks state-plane bloat as well as latency.
func BenchmarkSnapshotRestore(b *testing.B) {
	events := pipelineBenchEvents(b)
	build := func(shards int) *pipeline.Pipeline {
		p, err := pipeline.New(pipeline.Config{
			Factories: []detector.Factory{
				func() (detector.Detector, error) { return sentinel.New(sentinel.Config{}) },
				func() (detector.Detector, error) { return arcane.New(arcane.Config{}) },
			},
			Reputation: iprep.BuildFeed(),
			Mode:       pipeline.Sharded,
			Shards:     shards,
		})
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	src := build(4)
	j := 0
	err := src.Run(context.Background(), func() (logfmt.Entry, error) {
		if j >= len(events) {
			return logfmt.Entry{}, io.EOF
		}
		e := events[j].Entry
		j++
		return e, nil
	}, func(pipeline.Decision) error { return nil })
	if err != nil {
		b.Fatal(err)
	}
	dst := build(8)

	w := statecodec.NewWriter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		if err := src.Checkpoint(w); err != nil {
			b.Fatal(err)
		}
		if err := dst.ResumeFrom(statecodec.NewReader(w.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(w.Len()), "snapshot-bytes")
}

// BenchmarkDetectorInspect isolates each detector's per-event judge cost
// on the shared bench stream (enrichment done up front, outside the
// timed loop) — the ns/op each side contributes to the ensemble's
// latency budget, and the alloc gate for the zero-alloc inspect paths.
func BenchmarkDetectorInspect(b *testing.B) {
	events := pipelineBenchEvents(b)
	enr := detector.NewEnricher(iprep.BuildFeed())
	reqs := make([]detector.Request, len(events))
	for i := range events {
		enr.EnrichInto(&reqs[i], events[i].Entry)
	}
	factories := []struct {
		name  string
		build detector.Factory
	}{
		{"sentinel", func() (detector.Detector, error) { return sentinel.New(sentinel.Config{}) }},
		{"arcane", func() (detector.Detector, error) { return arcane.New(arcane.Config{}) }},
		{"trajectory", func() (detector.Detector, error) { return trajectory.New(trajectory.Config{}) }},
	}
	for _, f := range factories {
		b.Run(f.name, func(b *testing.B) {
			d, err := f.build()
			if err != nil {
				b.Fatal(err)
			}
			var v detector.Verdict
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.InspectInto(&reqs[i%len(reqs)], &v)
			}
		})
	}
}

// BenchmarkTrajectory13 regenerates E13: the pair extended with the
// semantic trajectory detector — training on a held-out seed, three-way
// voting and the pairwise diversity panel, every iteration.
func BenchmarkTrajectory13(b *testing.B) {
	var run *experiments.TrajectoryRun
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExecuteTrajectory(experiments.BenchScale)
		if err != nil {
			b.Fatal(err)
		}
		run = r
	}
	b.SetBytes(int64(run.Total))
	b.ReportMetric(run.Singles[2].Sensitivity(), "sensTraj")
	b.ReportMetric(run.Votes[1].Sensitivity(), "sens2oo3")
	b.ReportMetric(run.Votes[1].Specificity(), "spec2oo3")
}

// BenchmarkThreeWay regenerates E11: the two-tool study extended with a
// learned Naive Bayes third detector and r-out-of-3 voting. Each
// iteration includes model training on an independent seed.
func BenchmarkThreeWay(b *testing.B) {
	var run *experiments.ThreeWayRun
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExecuteThreeWay(experiments.BenchScale)
		if err != nil {
			b.Fatal(err)
		}
		run = r
	}
	b.SetBytes(int64(run.Total))
	b.ReportMetric(run.Votes[1].Sensitivity(), "sens2oo3")
	b.ReportMetric(run.Votes[1].Specificity(), "spec2oo3")
}
