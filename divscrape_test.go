package divscrape_test

import (
	"bytes"
	"testing"
	"time"

	"divscrape"
)

func TestAnalyzeEndToEnd(t *testing.T) {
	gen, err := divscrape.NewGenerator(divscrape.GeneratorConfig{
		Seed:     11,
		Duration: 2 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := divscrape.NewDetectorPair()
	if err != nil {
		t.Fatal(err)
	}
	summary, err := divscrape.Analyze(gen, pair)
	if err != nil {
		t.Fatal(err)
	}
	if summary.Total == 0 {
		t.Fatal("empty run")
	}
	if summary.Contingency.Total() != summary.Total {
		t.Error("contingency does not partition the stream")
	}
	if !summary.Labelled {
		t.Error("generator runs carry labels")
	}
	com := summary.Commercial()
	if com.Total() != summary.Total {
		t.Error("confusion matrix incomplete")
	}
}

// The file-based path must agree exactly with the in-memory path: write a
// dataset, re-read it through AnalyzeLog, and compare contingency tables.
func TestAnalyzeLogMatchesInMemory(t *testing.T) {
	cfg := divscrape.GeneratorConfig{Seed: 23, Duration: 90 * time.Minute}

	genA, err := divscrape.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pairA, err := divscrape.NewDetectorPair()
	if err != nil {
		t.Fatal(err)
	}
	inMemory, err := divscrape.Analyze(genA, pairA)
	if err != nil {
		t.Fatal(err)
	}

	genB, err := divscrape.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var logBuf, labelBuf bytes.Buffer
	n, err := divscrape.WriteDataset(genB, &logBuf, &labelBuf)
	if err != nil {
		t.Fatal(err)
	}
	pairB, err := divscrape.NewDetectorPair()
	if err != nil {
		t.Fatal(err)
	}
	fromLog, err := divscrape.AnalyzeLog(&logBuf, pairB)
	if err != nil {
		t.Fatal(err)
	}

	if fromLog.Total != n || fromLog.Total != inMemory.Total {
		t.Fatalf("totals differ: log %d, in-memory %d, written %d",
			fromLog.Total, inMemory.Total, n)
	}
	if fromLog.Contingency != inMemory.Contingency {
		t.Errorf("contingency differs:\n log:       %+v\n in-memory: %+v",
			fromLog.Contingency, inMemory.Contingency)
	}
	if fromLog.Labelled {
		t.Error("raw logs carry no labels")
	}
}

// The sharded facade entry points must agree exactly with the sequential
// ones: same contingency, same confusion matrices.
func TestAnalyzeShardedMatchesSequential(t *testing.T) {
	cfg := divscrape.GeneratorConfig{Seed: 29, Duration: 2 * time.Hour}

	genA, err := divscrape.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := divscrape.NewDetectorPair()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := divscrape.Analyze(genA, pair)
	if err != nil {
		t.Fatal(err)
	}

	genB, err := divscrape.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := divscrape.AnalyzeSharded(genB, 4)
	if err != nil {
		t.Fatal(err)
	}

	if sharded.Total != seq.Total {
		t.Fatalf("totals differ: sharded %d, sequential %d", sharded.Total, seq.Total)
	}
	if sharded.Contingency != seq.Contingency {
		t.Errorf("contingency differs:\n sharded:    %+v\n sequential: %+v",
			sharded.Contingency, seq.Contingency)
	}
	if sharded.Commercial() != seq.Commercial() || sharded.Behavioural() != seq.Behavioural() {
		t.Error("labelled confusion matrices differ between modes")
	}
	if !sharded.Labelled {
		t.Error("generator runs carry labels")
	}

	// Log replay through the sharded pipeline must also agree.
	genC, err := divscrape.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var logBuf, labelBuf bytes.Buffer
	if _, err := divscrape.WriteDataset(genC, &logBuf, &labelBuf); err != nil {
		t.Fatal(err)
	}
	fromLog, err := divscrape.AnalyzeLogSharded(&logBuf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fromLog.Total != seq.Total || fromLog.Contingency != seq.Contingency {
		t.Errorf("sharded log replay differs: %+v vs %+v", fromLog.Contingency, seq.Contingency)
	}
}

// The relaxed facade entry points must reproduce the sequential tables
// exactly: every aggregate is a commutative count, so dropping the
// cross-client delivery order changes nothing. This is the facade-level
// face of the pipeline's relaxed-equivalence suite.
func TestAnalyzeShardedRelaxedMatchesSequential(t *testing.T) {
	cfg := divscrape.GeneratorConfig{Seed: 31, Duration: 2 * time.Hour}

	genA, err := divscrape.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := divscrape.NewDetectorPair()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := divscrape.Analyze(genA, pair)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 3, 8} {
		genB, err := divscrape.NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		relaxed, err := divscrape.AnalyzeShardedRelaxed(genB, shards)
		if err != nil {
			t.Fatal(err)
		}
		if relaxed.Total != seq.Total {
			t.Fatalf("shards=%d: totals differ: relaxed %d, sequential %d",
				shards, relaxed.Total, seq.Total)
		}
		if relaxed.Contingency != seq.Contingency {
			t.Errorf("shards=%d: contingency differs:\n relaxed:    %+v\n sequential: %+v",
				shards, relaxed.Contingency, seq.Contingency)
		}
		if relaxed.Commercial() != seq.Commercial() || relaxed.Behavioural() != seq.Behavioural() {
			t.Errorf("shards=%d: labelled confusion matrices differ between modes", shards)
		}
		if !relaxed.Labelled {
			t.Error("generator runs carry labels")
		}
	}

	// Log replay — parallel parse feeding the relaxed pipeline — must
	// agree too.
	genC, err := divscrape.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var logBuf, labelBuf bytes.Buffer
	if _, err := divscrape.WriteDataset(genC, &logBuf, &labelBuf); err != nil {
		t.Fatal(err)
	}
	fromLog, err := divscrape.AnalyzeLogShardedRelaxed(&logBuf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fromLog.Total != seq.Total || fromLog.Contingency != seq.Contingency {
		t.Errorf("relaxed log replay differs: %+v vs %+v", fromLog.Contingency, seq.Contingency)
	}
	if fromLog.Labelled {
		t.Error("raw logs carry no labels")
	}
}

func TestDetectorPairInspectAndReset(t *testing.T) {
	pair, err := divscrape.NewDetectorPair()
	if err != nil {
		t.Fatal(err)
	}
	entry := divscrape.Entry{
		RemoteAddr: "172.16.0.9", Identity: "-", AuthUser: "-",
		Time:   time.Date(2018, 3, 11, 12, 0, 0, 0, time.UTC),
		Method: "GET", Path: "/api/price/1", Proto: "HTTP/1.1",
		Status: 200, Bytes: 400, Referer: "-",
		UserAgent: "python-requests/2.18.4",
	}
	vc, vb := pair.Inspect(entry)
	if !vc.Alert {
		t.Error("commercial detector should convict a tool UA from a datacenter")
	}
	if vb.Alert {
		t.Error("behavioural detector should still be warming up")
	}
	req := pair.Enrich(entry)
	if req.IP == 0 {
		t.Error("Enrich did not parse the address")
	}
	pair.Reset()
	vc2, _ := pair.Inspect(entry)
	if vc2.Alert != vc.Alert {
		t.Error("reset changed first-request behaviour")
	}
}

func TestCalibratedProfileExported(t *testing.T) {
	p := divscrape.CalibratedProfile(1)
	if p.Total() == 0 {
		t.Error("empty calibrated profile")
	}
}
