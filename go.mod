module divscrape

go 1.24
