package divscrape_test

import (
	"fmt"
	"time"

	"divscrape"
)

// ExampleAnalyze generates a short labelled traffic window, runs the
// detector pair over it and prints the alert-agreement structure of the
// paper's Table 2. Everything is deterministic in the seed.
func ExampleAnalyze() {
	gen, err := divscrape.NewGenerator(divscrape.GeneratorConfig{
		Seed:     7,
		Duration: time.Hour,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	pair, err := divscrape.NewDetectorPair()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	summary, err := divscrape.Analyze(gen, pair)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	c := summary.Contingency
	fmt.Println("cells sum to total:", c.Both+c.Neither+c.AOnly+c.BOnly == summary.Total)
	fmt.Println("labelled:", summary.Labelled)
	// Output:
	// cells sum to total: true
	// labelled: true
}

// ExampleDetectorPair_Inspect shows judging a single log record: a
// scraping kit's first request convicts on its declared User-Agent alone.
func ExampleDetectorPair_Inspect() {
	pair, err := divscrape.NewDetectorPair()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	entry := divscrape.Entry{
		RemoteAddr: "172.16.0.9",
		Identity:   "-",
		AuthUser:   "-",
		Time:       time.Date(2018, 3, 12, 10, 0, 0, 0, time.UTC),
		Method:     "GET",
		Path:       "/api/price/1",
		Proto:      "HTTP/1.1",
		Status:     200,
		Bytes:      400,
		Referer:    "-",
		UserAgent:  "python-requests/2.18.4",
	}
	commercial, behavioural := pair.Inspect(entry)
	fmt.Println("commercial alert:", commercial.Alert)
	fmt.Println("behavioural alert (still warming up):", behavioural.Alert)
	// Output:
	// commercial alert: true
	// behavioural alert (still warming up): false
}
