package divscrape

// Cluster: the multi-node resilience plane. A Cluster node replicates
// runtime enforcement state — mitigation ladder digests, dynamic
// reputation-overlay entries, session digests — between httpguard
// instances (or scrapedetect followers) as periodic deltas, detects peer
// failure with a phi-accrual detector, routes clients over a consistent-
// hash ring that skips suspect and dead peers, and degrades explicitly
// (fail-open or fail-closed) when quorum is lost. httpguard.Guard
// implements ClusterBackend directly; `scrapedetect -follow
// -cluster-listen` is the assembled CLI form. See examples/cluster for a
// three-node walkthrough including a node kill and heal.

import (
	"net/http"
	"time"

	"divscrape/internal/cluster"
	"divscrape/internal/mitigate"
)

type (
	// Cluster is one member of the replication plane: it owns the delta
	// exchange, failure detection, degraded-mode policy and routing view
	// for a single local backend. Drive it with Tick and feed it peer
	// frames through Receive (or ClusterHandler over HTTP).
	Cluster = cluster.Node
	// ClusterConfig parameterises NewCluster. ID and the Peers entries
	// are transport addresses: with the HTTP transport a peer's ID is
	// dialled directly.
	ClusterConfig = cluster.Config
	// ClusterBackend is the local state a node replicates. Implemented by
	// httpguard.Guard.
	ClusterBackend = cluster.Backend
	// ClusterStatus is a node's membership/replication snapshot, JSON-
	// ready for health endpoints.
	ClusterStatus = cluster.Status
	// ClusterPeerStatus is one peer's line in a ClusterStatus.
	ClusterPeerStatus = cluster.PeerStatus
	// ClusterEvent is one membership or degradation transition.
	ClusterEvent = cluster.Event
	// ClusterDegradedPolicy selects quorum-loss behaviour.
	ClusterDegradedPolicy = cluster.DegradedPolicy
	// ClusterTransport carries encoded delta frames between nodes.
	ClusterTransport = cluster.Transport
	// ClusterMemNetwork is an in-process transport with partitions,
	// per-link cuts and virtual-time delays — the harness the cluster's
	// own convergence proofs run on, exported for tests and demos.
	ClusterMemNetwork = cluster.MemNetwork
	// MitigationDigest is one client's replicable enforcement summary —
	// the unit ClusterBackend.LadderDigestsSince streams and deltas ship.
	MitigationDigest = mitigate.ClientDigest
)

// Quorum-loss policies for ClusterConfig.Degraded.
const (
	// ClusterFailOpen keeps enforcing on local state, unchanged.
	ClusterFailOpen = cluster.FailOpen
	// ClusterFailClosed additionally freezes ladder escalation until the
	// partition heals, so stale replicated state cannot push clients up
	// the ladder.
	ClusterFailClosed = cluster.FailClosed
)

// NewCluster validates the config and builds a node. The node is
// goroutine-free: call Tick on whatever cadence (and clock) suits the
// deployment.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// NewClusterHTTPTransport returns the production transport: deltas are
// POSTed to http://<peer>/cluster/delta with the given per-send timeout
// (zero selects 2s).
func NewClusterHTTPTransport(timeout time.Duration) ClusterTransport {
	return cluster.NewHTTPTransport(timeout)
}

// ClusterHandler serves a node's side of the delta exchange; mount it on
// the address the node's ID names.
func ClusterHandler(n *Cluster) http.Handler { return cluster.Handler(n) }

// NewClusterMemNetwork returns an empty in-process network; Attach each
// node, then deliver delayed frames with Pump.
func NewClusterMemNetwork() *ClusterMemNetwork { return cluster.NewMemNetwork() }
