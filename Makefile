# Developer entry points. `make verify` is the tier-1 gate CI runs on every
# push; `make bench` smoke-runs the pipeline benchmarks (one iteration per
# mode, enough to catch regressions in wiring without taking minutes).

GO ?= go

.PHONY: verify build test vet bench

verify: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -run xxx -bench 'BenchmarkPipeline' -benchtime 1x .
	$(GO) test -run xxx -bench 'BenchmarkPipeline' -benchtime 1x ./internal/pipeline/
