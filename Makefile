# Developer entry points. `make verify` is the tier-1 gate CI runs on every
# push; `make bench` smoke-runs the pipeline, guard, state-plane and
# streaming-ingest benchmarks (five iterations each, enough to catch
# regressions in wiring and to average out single-run jitter) and records
# the results machine-readably in BENCH_PR10.json so the performance
# trajectory survives the CI log. `make fuzz` runs the statecodec fuzz
# targets for a short bounded pass.
# `make benchcmp` runs the same benchmarks once and gates them against the
# checked-in record: non-zero exit when req/s regresses >20% or allocs/op
# rises on any shared benchmark. Both targets share the bench.out recipe,
# so a benchmark added to the record is automatically in the gate.
# `make chaos` runs the fault-injection suite under the race detector:
# detector panics, torn checkpoint writes, ENOSPC, follower read errors —
# every failure the failure plane claims to absorb, injected on purpose.
# `make nosleep` greps tests for time.Sleep — deterministic tests drive
# time through injected clocks and hooks (internal/clockwork,
# faultinject.SetSleep, the Sleep hooks on configs), never the wall clock.

GO ?= go

# bench pipes through tee; without pipefail a failing benchmark run would
# still exit 0 and CI would upload a silently truncated record.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

BENCH_RECORD := BENCH_PR10.json

.PHONY: verify build test vet bench benchcmp race chaos fuzz nosleep cover bench.out

verify: vet build test nosleep

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Flaky-test firewall: wall-clock sleeping in internal tests is the #1
# source of order- and load-dependent flakes. Tests coordinate through
# injected clocks/hooks instead (see internal/clockwork and the Sleep
# hook on stream.FollowerConfig).
nosleep:
	@if grep -rn --include='*_test.go' -E '\btime\.Sleep\(' internal/ httpguard/ cmd/; then \
		echo "error: time.Sleep is forbidden in tests; inject a clock (internal/clockwork) or a sleep hook instead"; \
		exit 1; \
	fi

# Per-package coverage summary; CI publishes cover.out + the function
# table as a workflow artifact.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tee cover.txt

race:
	$(GO) test -race ./internal/pipeline/ ./internal/spsc/ ./internal/logfmt/ ./internal/mitigate/ ./internal/statecodec/ ./internal/sessions/ ./internal/stream/ ./internal/metrics/ ./internal/iprep/ ./internal/checkpoint/ ./internal/faultinject/ ./internal/cluster/ ./internal/trajectory/ ./httpguard/

# The chaos suite under -race: injected detector panics, overload stalls,
# torn/ENOSPC checkpoint writes, follower read errors, kill-and-restore,
# dropped/delayed/exhausted cluster delta frames and mid-rebalance faults.
chaos:
	$(GO) test -race -run 'TestChaos' ./httpguard/ ./internal/checkpoint/ ./internal/stream/ ./internal/cluster/ ./cmd/scrapedetect/

# Each target gets a short native-fuzz pass over the committed seed corpus
# plus fresh mutations; `go test -fuzz` accepts one target per invocation.
FUZZTIME ?= 15s

fuzz:
	$(GO) test ./internal/statecodec/ -run xxx -fuzz 'FuzzDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/statecodec/ -run xxx -fuzz FuzzDecodeDelta -fuzztime $(FUZZTIME)
	$(GO) test ./internal/statecodec/ -run xxx -fuzz FuzzRoundTrip -fuzztime $(FUZZTIME)

bench.out:
	@rm -f bench.out
	$(GO) test -run xxx -bench 'BenchmarkPipeline|BenchmarkSnapshotRestore' -benchtime 5x . | tee -a bench.out
	$(GO) test -run xxx -bench 'BenchmarkDetectorInspect' -benchtime 20000x . | tee -a bench.out
	$(GO) test -run xxx -bench 'BenchmarkPipeline' -benchtime 5x ./internal/pipeline/ | tee -a bench.out
	$(GO) test -run xxx -bench 'BenchmarkHTTPGuard|BenchmarkRebalance' -benchtime 5x ./httpguard/ | tee -a bench.out
	$(GO) test -run xxx -bench 'BenchmarkStreamIngest' -benchtime 5x ./internal/stream/ | tee -a bench.out
	$(GO) test -run xxx -bench 'BenchmarkClusterDelta' -benchtime 5x ./internal/cluster/ | tee -a bench.out

bench: bench.out
	$(GO) run ./cmd/benchjson -out $(BENCH_RECORD) < bench.out
	@rm -f bench.out

benchcmp: bench.out
	$(GO) run ./cmd/benchjson -compare $(BENCH_RECORD) < bench.out
	@rm -f bench.out
