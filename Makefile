# Developer entry points. `make verify` is the tier-1 gate CI runs on every
# push; `make bench` smoke-runs the pipeline and guard benchmarks (one
# iteration each, enough to catch regressions in wiring without taking
# minutes) and records the results machine-readably in BENCH_PR2.json so
# the performance trajectory survives the CI log.

GO ?= go

# bench pipes through tee; without pipefail a failing benchmark run would
# still exit 0 and CI would upload a silently truncated record.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: verify build test vet bench race

verify: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/pipeline/ ./internal/mitigate/ ./httpguard/

bench:
	@rm -f bench.out
	$(GO) test -run xxx -bench 'BenchmarkPipeline' -benchtime 1x . | tee -a bench.out
	$(GO) test -run xxx -bench 'BenchmarkPipeline' -benchtime 1x ./internal/pipeline/ | tee -a bench.out
	$(GO) test -run xxx -bench 'BenchmarkHTTPGuard' -benchtime 1x ./httpguard/ | tee -a bench.out
	$(GO) run ./cmd/benchjson -out BENCH_PR2.json < bench.out
	@rm -f bench.out
