package main

import (
	"strings"
	"testing"
)

func TestRunBenchScaleAllTables(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-scale", "bench", "-exp", "e1,e2,e3,e4,e5,e6,e8,e9,e10"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4",
		"E5", "E6", "E8", "E9", "E10",
		"1,469,744", // the paper's reference total
		"sentinel", "arcane",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Unrequested experiments stay out.
	if strings.Contains(out, "E7") {
		t.Error("E7 rendered without being requested")
	}
}

func TestRunSelectsSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-scale", "bench", "-exp", "e2"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Table 2") {
		t.Error("E2 missing")
	}
	if strings.Contains(out, "Table 1 –") {
		t.Error("unrequested table rendered")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-scale", "galactic"}); err == nil {
		t.Error("invalid scale accepted")
	}
	if err := run(&sb, []string{"-bogus"}); err == nil {
		t.Error("invalid flag accepted")
	}
}

func TestRunSeedOverrideChangesDataset(t *testing.T) {
	var a, b strings.Builder
	if err := run(&a, []string{"-scale", "bench", "-exp", "e2"}); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, []string{"-scale", "bench", "-exp", "e2", "-seed", "777"}); err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Error("seed override did not change the run")
	}
}
