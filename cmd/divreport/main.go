// Command divreport runs the reproduction's experiment suite and prints
// the paper's tables (E1-E4) plus the labelled extension experiments
// (E5-E10) as plain-text tables.
//
// Usage:
//
//	divreport [-scale bench|ci|paper] [-exp all|e1,...,e13] [-seed N]
//
// The ci scale (default) simulates one day of traffic; paper replays the
// full 8-day window (~1.5M requests, a couple of seconds).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"divscrape/internal/experiments"
	"divscrape/internal/report"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "divreport:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("divreport", flag.ContinueOnError)
	scaleName := fs.String("scale", "ci", "dataset scale: bench, ci or paper")
	expList := fs.String("exp", "all", "comma-separated experiments (e1..e13) or all")
	seed := fs.Uint64("seed", 0, "override the dataset seed (0 keeps the scale default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scale, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		return err
	}
	if *seed != 0 {
		scale.Seed = *seed
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expList, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	wantExp := func(id string) bool { return want["all"] || want[id] }

	fmt.Fprintf(w, "divscrape experiment suite — scale=%s duration=%v seed=%d\n\n",
		scale.Name, scale.Duration, scale.Seed)

	res, err := experiments.Execute(scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "dataset: %s requests generated and scored in %v\n\n",
		report.Count(res.Total), res.Elapsed.Round(1000000))

	tables := []struct {
		id    string
		build func() *report.Table
	}{
		{"e1", func() *report.Table { return experiments.Table1(res) }},
		{"e2", func() *report.Table { return experiments.Table2(res) }},
		{"e3", func() *report.Table { return experiments.Table3(res) }},
		{"e4", func() *report.Table { return experiments.Table4(res) }},
		{"e5", func() *report.Table { return experiments.Table5(res) }},
		{"e6", func() *report.Table { return experiments.Table6(res) }},
		{"e8", func() *report.Table { return experiments.Table8(res) }},
		{"e9", func() *report.Table { return experiments.Table9(res) }},
		{"e10", func() *report.Table { return experiments.Table10(res) }},
	}
	for _, tb := range tables {
		if !wantExp(tb.id) {
			continue
		}
		if err := tb.build().Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	if wantExp("e7") {
		topo, err := experiments.ExecuteTopologies(scale)
		if err != nil {
			return err
		}
		if err := experiments.Table7(topo).Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	if wantExp("e11") {
		threeWay, err := experiments.ExecuteThreeWay(scale)
		if err != nil {
			return err
		}
		if err := experiments.Table11(threeWay).Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	if wantExp("e13") {
		traj, err := experiments.ExecuteTrajectory(scale)
		if err != nil {
			return err
		}
		if err := experiments.Table13(traj).Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
		if err := experiments.Table13Diversity(traj).Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
