package main

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Golden-file regression test for the experiment report: the tables are
// the reproduction's headline artefact, so formatting or numeric drift
// must surface as a reviewable diff. Regenerate with:
//
//	go test ./cmd/divreport -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// elapsedRe scrubs the only run-dependent text: the generation/scoring
// wall time on the dataset line.
var elapsedRe = regexp.MustCompile(`scored in [0-9a-zµ.]+`)

func TestGoldenReport(t *testing.T) {
	var sb strings.Builder
	err := run(&sb, []string{"-scale", "bench", "-exp", "e1,e2,e3,e4,e5,e6,e8,e9,e10"})
	if err != nil {
		t.Fatal(err)
	}
	got := elapsedRe.ReplaceAllString(sb.String(), "scored in ELAPSED")

	path := filepath.Join("testdata", "report.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("report differs from %s (re-run with -update if the change is intended)\n--- got ---\n%s\n--- want ---\n%s",
			path, got, string(want))
	}
}
