// Command scrapegen generates a labelled synthetic Apache access log:
// the e-commerce traffic capture the evaluation runs on, in Combined Log
// Format, plus a CSV sidecar with per-request ground truth.
//
// Usage:
//
//	scrapegen -out access.log -labels labels.csv [-seed N] [-hours H]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"divscrape/internal/report"
	"divscrape/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "scrapegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("scrapegen", flag.ContinueOnError)
	out := fs.String("out", "access.log", "output access log path")
	labels := fs.String("labels", "labels.csv", "output label sidecar path ('' to skip)")
	seed := fs.Uint64("seed", 42, "generation seed")
	hours := fs.Float64("hours", 24, "capture window length in hours (192 = paper scale)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *hours <= 0 {
		return fmt.Errorf("-hours must be positive, got %g", *hours)
	}

	gen, err := workload.NewGenerator(workload.Config{
		Seed:     *seed,
		Duration: time.Duration(*hours * float64(time.Hour)),
	})
	if err != nil {
		return err
	}

	logFile, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer logFile.Close()

	var labelSink io.Writer
	var labelFile *os.File
	if *labels != "" {
		labelFile, err = os.Create(*labels)
		if err != nil {
			return err
		}
		defer labelFile.Close()
		labelSink = labelFile
	} else {
		labelSink = io.Discard
	}

	started := time.Now()
	n, err := workload.WriteDataset(gen, logFile, labelSink)
	if err != nil {
		return err
	}
	if err := logFile.Sync(); err != nil {
		return err
	}
	fmt.Printf("wrote %s requests to %s", report.Count(n), *out)
	if labelFile != nil {
		fmt.Printf(" (labels in %s)", *labels)
	}
	fmt.Printf(" in %v\n", time.Since(started).Round(time.Millisecond))
	return nil
}
