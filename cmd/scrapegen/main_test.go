package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"divscrape/internal/logfmt"
	"divscrape/internal/workload"
)

func TestRunWritesParseableDataset(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "access.log")
	labelPath := filepath.Join(dir, "labels.csv")
	err := run([]string{"-out", logPath, "-labels", labelPath, "-hours", "1", "-seed", "9"})
	if err != nil {
		t.Fatal(err)
	}

	lf, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	reader := logfmt.NewReader(lf, logfmt.ReaderConfig{Policy: logfmt.Strict})
	var n uint64
	if err := reader.ForEach(func(logfmt.Entry) error { n++; return nil }); err != nil {
		t.Fatalf("generated log does not parse strictly: %v", err)
	}
	if n == 0 {
		t.Fatal("empty log")
	}

	gf, err := os.Open(labelPath)
	if err != nil {
		t.Fatal(err)
	}
	defer gf.Close()
	labels, err := workload.ReadLabels(gf)
	if err != nil {
		t.Fatalf("labels do not parse: %v", err)
	}
	if uint64(len(labels)) != n {
		t.Errorf("labels %d != log lines %d", len(labels), n)
	}
}

func TestRunSkipLabels(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "access.log")
	if err := run([]string{"-out", logPath, "-labels", "", "-hours", "0.5"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "labels.csv")); err == nil {
		t.Error("label file created despite -labels ''")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-hours", "-1"}); err == nil {
		t.Error("negative hours accepted")
	}
	if err := run([]string{"-out", filepath.Join("nope", "deep", "x.log")}); err == nil {
		t.Error("unwritable path accepted")
	}
	if err := run([]string{"-bogus"}); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Error("invalid flag accepted")
	}
}
