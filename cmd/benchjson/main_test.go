package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: divscrape/httpguard
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkHTTPGuard/observe-8         	       1	     68378 ns/op	       438.0 events	    3072 B/op	      30 allocs/op
BenchmarkHTTPGuard/graduated-8       	       1	     31252 ns/op	       438.0 events	    3136 B/op	      30 allocs/op
PASS
ok  	divscrape/httpguard	0.011s
pkg: divscrape
BenchmarkPipelineSharded-8   	       2	  51000000 ns/op	 120000 req/s	       8.000 shards
`

func TestRunParsesBenchOutput(t *testing.T) {
	var sb strings.Builder
	if err := run(strings.NewReader(sample), &sb); err != nil {
		t.Fatal(err)
	}
	var out Output
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, sb.String())
	}
	if out.Goos != "linux" || out.Goarch != "amd64" || out.CPU == "" {
		t.Errorf("context = %+v", out)
	}
	if len(out.Results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(out.Results))
	}
	first := out.Results[0]
	if first.Pkg != "divscrape/httpguard" || first.Name != "BenchmarkHTTPGuard/observe-8" {
		t.Errorf("first result = %+v", first)
	}
	if first.Iterations != 1 || first.Metrics["ns/op"] != 68378 || first.Metrics["allocs/op"] != 30 {
		t.Errorf("first metrics = %+v", first)
	}
	last := out.Results[2]
	if last.Pkg != "divscrape" || last.Metrics["req/s"] != 120000 || last.Metrics["shards"] != 8 {
		t.Errorf("last result = %+v", last)
	}
}

func TestRunEmptyInput(t *testing.T) {
	var sb strings.Builder
	if err := run(strings.NewReader("no benchmarks here\n"), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"results": []`) {
		t.Errorf("empty input should render an empty results array:\n%s", sb.String())
	}
}

func mkOutput(results ...Result) Output { return Output{Results: results} }

func res(pkg, name string, metrics map[string]float64) Result {
	return Result{Pkg: pkg, Name: name, Iterations: 1, Metrics: metrics}
}

func TestCompareDetectsRegressions(t *testing.T) {
	old := mkOutput(
		res("p", "BenchmarkA-8", map[string]float64{"req/s": 1000, "allocs/op": 100}),
		res("p", "BenchmarkB-8", map[string]float64{"req/s": 1000}),
		res("p", "BenchmarkGone-8", map[string]float64{"req/s": 5}),
	)
	tests := []struct {
		name string
		cur  Output
		want bool
	}{
		{"identical", mkOutput(
			res("p", "BenchmarkA", map[string]float64{"req/s": 1000, "allocs/op": 100}),
			res("p", "BenchmarkB", map[string]float64{"req/s": 1000}),
		), true},
		{"within tolerance", mkOutput(
			res("p", "BenchmarkA", map[string]float64{"req/s": 850, "allocs/op": 104}),
		), true},
		{"throughput regression", mkOutput(
			res("p", "BenchmarkB", map[string]float64{"req/s": 700}),
		), false},
		{"alloc regression", mkOutput(
			res("p", "BenchmarkA", map[string]float64{"req/s": 1000, "allocs/op": 120}),
		), false},
		{"alloc rise from zero", mkOutput(
			res("p", "BenchmarkB", map[string]float64{"req/s": 1000, "allocs/op": 3}),
		), true}, // baseline B has no allocs metric: nothing to compare
		{"new benchmark never gates", mkOutput(
			res("p", "BenchmarkFresh", map[string]float64{"req/s": 1, "allocs/op": 1e9}),
		), true},
	}
	for _, tt := range tests {
		var sb strings.Builder
		if got := compare(old, tt.cur, &sb, gateAll); got != tt.want {
			t.Errorf("%s: compare = %v, want %v\n%s", tt.name, got, tt.want, sb.String())
		}
	}
}

// Under -gate allocs a throughput drop is reported as advisory but only
// allocs/op regressions fail — the CI configuration, where runners make
// req/s noisy while allocation counts stay deterministic.
func TestCompareGateAllocs(t *testing.T) {
	old := mkOutput(res("p", "BenchmarkA-8", map[string]float64{"req/s": 1000, "allocs/op": 100}))

	var sb strings.Builder
	cur := mkOutput(res("p", "BenchmarkA", map[string]float64{"req/s": 400, "allocs/op": 100}))
	if !compare(old, cur, &sb, gateAllocs) {
		t.Errorf("req/s drop failed the allocs gate:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "advisory req/s") {
		t.Errorf("report missing advisory line:\n%s", sb.String())
	}

	sb.Reset()
	cur = mkOutput(res("p", "BenchmarkA", map[string]float64{"req/s": 400, "allocs/op": 120}))
	if compare(old, cur, &sb, gateAllocs) {
		t.Errorf("allocs/op rise passed the allocs gate:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION allocs/op") {
		t.Errorf("report missing allocs regression line:\n%s", sb.String())
	}
}

// A benchmark that reports a shards metric carries the worker count in
// its comparison key: the same name at different shard counts describes
// different topologies (the default is GOMAXPROCS, which varies by
// machine), so unlike counts pair as new/gone instead of regressing
// against each other, and like counts still gate.
func TestCompareShardsDimension(t *testing.T) {
	old := mkOutput(res("p", "BenchmarkSharded-8", map[string]float64{"req/s": 1000, "shards": 8}))

	// Different shard count: never compared, never gates.
	var sb strings.Builder
	cur := mkOutput(res("p", "BenchmarkSharded-4", map[string]float64{"req/s": 10, "shards": 4}))
	if !compare(old, cur, &sb, gateAll) {
		t.Errorf("unlike shard counts were compared:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "new      p BenchmarkSharded shards=4") ||
		!strings.Contains(sb.String(), "gone     p BenchmarkSharded shards=8") {
		t.Errorf("unlike shard counts not reported as new/gone:\n%s", sb.String())
	}

	// Same shard count: the gate still binds.
	sb.Reset()
	cur = mkOutput(res("p", "BenchmarkSharded-4", map[string]float64{"req/s": 10, "shards": 8}))
	if compare(old, cur, &sb, gateAll) {
		t.Errorf("regression at matching shard count passed:\n%s", sb.String())
	}
}

func TestCompareStripsGomaxprocsSuffix(t *testing.T) {
	old := mkOutput(res("p", "BenchmarkA-8", map[string]float64{"allocs/op": 10}))
	cur := mkOutput(res("p", "BenchmarkA-4", map[string]float64{"allocs/op": 50}))
	var sb strings.Builder
	if compare(old, cur, &sb, gateAll) {
		t.Errorf("suffix-differing names were not matched:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Errorf("report missing regression line:\n%s", sb.String())
	}
}

func TestParseBenchLineRejectsGarbage(t *testing.T) {
	if _, ok := parseBenchLine("BenchmarkBroken"); ok {
		t.Error("accepted a line without an iteration count")
	}
	if _, ok := parseBenchLine("BenchmarkBroken xyz 12 ns/op"); ok {
		t.Error("accepted a non-numeric iteration count")
	}
	if _, ok := parseBenchLine("BenchmarkBroken 3 twelve ns/op"); ok {
		t.Error("accepted a non-numeric metric")
	}
}

// Parse benchmarks report a workers metric the same way the sharded ones
// report shards: the parallel-ingest default is GOMAXPROCS, so records
// taken at different -parse-workers counts must pair as new/gone rather
// than as a false regression, and like counts must still gate.
func TestCompareWorkersDimension(t *testing.T) {
	old := mkOutput(res("p", "BenchmarkStreamIngestParallel-8", map[string]float64{"req/s": 1000, "workers": 8}))

	// Different worker count: never compared, never gates.
	var sb strings.Builder
	cur := mkOutput(res("p", "BenchmarkStreamIngestParallel-4", map[string]float64{"req/s": 10, "workers": 4}))
	if !compare(old, cur, &sb, gateAll) {
		t.Errorf("unlike worker counts were compared:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "new      p BenchmarkStreamIngestParallel workers=4") ||
		!strings.Contains(sb.String(), "gone     p BenchmarkStreamIngestParallel workers=8") {
		t.Errorf("unlike worker counts not reported as new/gone:\n%s", sb.String())
	}

	// Same worker count: the gate still binds.
	sb.Reset()
	cur = mkOutput(res("p", "BenchmarkStreamIngestParallel-4", map[string]float64{"req/s": 10, "workers": 8}))
	if compare(old, cur, &sb, gateAll) {
		t.Errorf("regression at matching worker count passed:\n%s", sb.String())
	}
}
