// Command benchjson converts `go test -bench` text output (stdin) into a
// machine-readable JSON record (-out, default stdout), so benchmark runs
// can be tracked across PRs instead of scrolling away in CI logs. It
// understands the standard line shape —
//
//	BenchmarkName-8   123   4567 ns/op   89 B/op   2 allocs/op   1.5 req/s
//
// — keeping every value/unit pair as a metric, and records the goos /
// goarch / pkg / cpu context lines the test binary prints.
//
// With -compare old.json the command instead gates on regressions: the
// new record (-in file, or converted from stdin bench text when -in is
// absent) is checked against the old one, and the exit status is non-zero
// when any benchmark present in both regresses — req/s dropping more than
// 20%, or allocs/op rising beyond a 5% jitter allowance. Benchmarks only
// on one side are reported but never fail the gate, so adding or retiring
// benchmarks does not break the comparison. -gate selects which metrics
// fail the gate: "all" (the default) or "allocs", which treats allocs/op
// as binding and demotes req/s regressions to advisory lines — the shape
// CI wants, because allocation counts are deterministic while shared
// runners make throughput noisy.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Pkg is the package whose test binary produced the line.
	Pkg string `json:"pkg,omitempty"`
	// Name is the full benchmark name including the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Iterations is the b.N the line reports.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every reported pair.
	Metrics map[string]float64 `json:"metrics"`
}

// Output is the file layout: run context plus results.
type Output struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	compareWith := flag.String("compare", "", "baseline JSON record; exits non-zero when req/s regresses >20% or allocs/op rises on any shared benchmark")
	in := flag.String("in", "", "with -compare: read the new record from this JSON file instead of converting stdin bench text")
	gate := flag.String("gate", "all", `with -compare: metrics that fail the gate — "all", or "allocs" (req/s becomes advisory)`)
	flag.Parse()
	if *gate != gateAll && *gate != gateAllocs {
		fmt.Fprintf(os.Stderr, "benchjson: invalid -gate %q (want all or allocs)\n", *gate)
		os.Exit(2)
	}

	if *compareWith != "" {
		ok, err := compareMain(*compareWith, *in, *gate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := run(os.Stdin, w); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Gate modes: which metric regressions are binding.
const (
	gateAll    = "all"
	gateAllocs = "allocs"
)

// compareMain loads the baseline and the new record and reports whether
// the gate passes.
func compareMain(oldPath, newPath, gate string) (bool, error) {
	old, err := loadOutput(oldPath)
	if err != nil {
		return false, fmt.Errorf("baseline: %w", err)
	}
	var cur Output
	if newPath != "" {
		cur, err = loadOutput(newPath)
		if err != nil {
			return false, fmt.Errorf("new record: %w", err)
		}
	} else {
		cur, err = parse(os.Stdin)
		if err != nil {
			return false, fmt.Errorf("stdin: %w", err)
		}
	}
	return compare(old, cur, os.Stdout, gate), nil
}

func loadOutput(path string) (Output, error) {
	var out Output
	data, err := os.ReadFile(path)
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return out, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// Regression thresholds: throughput may jitter (especially at one bench
// iteration), so only a >20% drop gates; allocs/op is near-deterministic,
// so anything beyond a 5% allowance gates.
const (
	reqsRegressionFactor = 0.80
	allocsJitterFactor   = 1.05
)

// benchKey identifies a benchmark across records: package plus name with
// the -GOMAXPROCS suffix stripped, so records from machines with
// different core counts still line up. When the benchmark reports a
// `shards` or `workers` metric, that count joins the key: sharded
// pipeline benchmarks default their shard count to GOMAXPROCS, and the
// parallel-ingest benchmarks do the same with their parse-worker count,
// so the same benchmark name can describe different topologies on
// different machines — those must pair as new/gone, not as a bogus
// regression between unlike runs.
func benchKey(r Result) string {
	name := r.Name
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	key := r.Pkg + " " + name
	if s, ok := r.Metrics["shards"]; ok {
		key += fmt.Sprintf(" shards=%g", s)
	}
	if s, ok := r.Metrics["workers"]; ok {
		key += fmt.Sprintf(" workers=%g", s)
	}
	return key
}

// compare prints a per-benchmark report to w and returns false when any
// shared benchmark regresses on a gated metric. Under gateAllocs a req/s
// drop is still reported — prefixed "advisory" — but does not fail.
func compare(old, cur Output, w io.Writer, gate string) bool {
	oldBy := make(map[string]Result, len(old.Results))
	for _, r := range old.Results {
		oldBy[benchKey(r)] = r
	}
	pass := true
	for _, r := range cur.Results {
		key := benchKey(r)
		o, shared := oldBy[key]
		if !shared {
			fmt.Fprintf(w, "new      %s\n", key)
			continue
		}
		delete(oldBy, key)
		verdict := "ok"
		if or, ok := o.Metrics["req/s"]; ok {
			if nr, ok := r.Metrics["req/s"]; ok && nr < or*reqsRegressionFactor {
				if gate == gateAllocs {
					verdict = fmt.Sprintf("advisory req/s %.0f -> %.0f (-%.0f%%)", or, nr, (1-nr/or)*100)
				} else {
					verdict = fmt.Sprintf("REGRESSION req/s %.0f -> %.0f (-%.0f%%)", or, nr, (1-nr/or)*100)
					pass = false
				}
			}
		}
		if oa, ok := o.Metrics["allocs/op"]; ok {
			if na, ok := r.Metrics["allocs/op"]; ok && na > oa*allocsJitterFactor {
				verdict = fmt.Sprintf("REGRESSION allocs/op %.0f -> %.0f", oa, na)
				pass = false
			}
		}
		fmt.Fprintf(w, "%-8s %s\n", verdict, key)
	}
	for key := range oldBy {
		fmt.Fprintf(w, "gone     %s\n", key)
	}
	if pass {
		fmt.Fprintln(w, "benchjson: no regressions vs baseline")
	} else {
		fmt.Fprintln(w, "benchjson: REGRESSIONS vs baseline (see above)")
	}
	return pass
}

func run(r io.Reader, w io.Writer) error {
	out, err := parse(r)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// parse converts `go test -bench` text into an Output record.
func parse(r io.Reader) (Output, error) {
	var out Output
	out.Results = []Result{} // render [] rather than null when empty
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			res.Pkg = pkg
			out.Results = append(out.Results, res)
		}
	}
	return out, sc.Err()
}

// parseBenchLine parses one benchmark result line: the name, the
// iteration count, then (value, unit) pairs.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{
		Name:       fields[0],
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}
