// Command benchjson converts `go test -bench` text output (stdin) into a
// machine-readable JSON record (-out, default stdout), so benchmark runs
// can be tracked across PRs instead of scrolling away in CI logs. It
// understands the standard line shape —
//
//	BenchmarkName-8   123   4567 ns/op   89 B/op   2 allocs/op   1.5 req/s
//
// — keeping every value/unit pair as a metric, and records the goos /
// goarch / pkg / cpu context lines the test binary prints.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Pkg is the package whose test binary produced the line.
	Pkg string `json:"pkg,omitempty"`
	// Name is the full benchmark name including the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Iterations is the b.N the line reports.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every reported pair.
	Metrics map[string]float64 `json:"metrics"`
}

// Output is the file layout: run context plus results.
type Output struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := run(os.Stdin, w); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(r io.Reader, w io.Writer) error {
	var out Output
	out.Results = []Result{} // render [] rather than null when empty
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			res.Pkg = pkg
			out.Results = append(out.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// parseBenchLine parses one benchmark result line: the name, the
// iteration count, then (value, unit) pairs.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{
		Name:       fields[0],
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}
