package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"divscrape/internal/workload"
)

// writeDataset generates a small labelled dataset into dir.
func writeDataset(t *testing.T, dir string) (logPath, labelPath string) {
	t.Helper()
	gen, err := workload.NewGenerator(workload.Config{Seed: 13, Duration: 90 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	logPath = filepath.Join(dir, "access.log")
	labelPath = filepath.Join(dir, "labels.csv")
	lf, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	gf, err := os.Create(labelPath)
	if err != nil {
		t.Fatal(err)
	}
	defer gf.Close()
	if _, err := workload.WriteDataset(gen, lf, gf); err != nil {
		t.Fatal(err)
	}
	return logPath, labelPath
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	logPath, labelPath := writeDataset(t, dir)
	outPath := filepath.Join(dir, "verdicts.csv")

	for _, mode := range []string{"seq", "conc"} {
		var sb strings.Builder
		err := run(&sb, []string{
			"-log", logPath, "-labels", labelPath, "-mode", mode, "-out", outPath,
		})
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		out := sb.String()
		for _, want := range []string{"Alert diversity", "Both tools", "Labelled metrics", "Sensitivity"} {
			if !strings.Contains(out, want) {
				t.Errorf("mode %s: output missing %q", mode, want)
			}
		}
	}

	verdicts, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(verdicts)), "\n")
	if lines[0] != "seq,sentinel_alert,sentinel_score,arcane_alert,arcane_score" {
		t.Errorf("verdict header = %q", lines[0])
	}
	logBytes, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	logLines := strings.Count(string(logBytes), "\n")
	if len(lines)-1 != logLines {
		t.Errorf("verdict rows %d != log lines %d", len(lines)-1, logLines)
	}
}

// The -parallel flag selects the sharded pipeline; every table it prints
// must match the sequential run exactly, only the summary header differs.
func TestRunParallelFlag(t *testing.T) {
	dir := t.TempDir()
	logPath, labelPath := writeDataset(t, dir)

	var seq strings.Builder
	if err := run(&seq, []string{"-log", logPath, "-labels", labelPath, "-parallel", "0"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(seq.String(), "mode=seq, shards=1") {
		t.Errorf("-parallel 0 did not run sequentially:\n%s", firstLine(seq.String()))
	}

	var shard strings.Builder
	if err := run(&shard, []string{"-log", logPath, "-labels", labelPath, "-parallel", "3"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(shard.String(), "mode=shard, shards=3") {
		t.Errorf("-parallel 3 summary missing shard count:\n%s", firstLine(shard.String()))
	}

	// Everything below the timing header must be byte-identical.
	if tablesOf(seq.String()) != tablesOf(shard.String()) {
		t.Errorf("sharded tables differ from sequential:\n--- seq ---\n%s\n--- shard ---\n%s",
			tablesOf(seq.String()), tablesOf(shard.String()))
	}

	if err := run(&shard, []string{"-log", logPath, "-parallel", "-1"}); err == nil {
		t.Error("negative -parallel accepted")
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// tablesOf strips the run-dependent timing header, keeping the tables.
func tablesOf(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// The -mitigate flag replays a response policy over the decision stream;
// the detection tables must be unchanged and the replay table present.
func TestRunMitigateFlag(t *testing.T) {
	dir := t.TempDir()
	logPath, _ := writeDataset(t, dir)

	var plain strings.Builder
	if err := run(&plain, []string{"-log", logPath, "-parallel", "0"}); err != nil {
		t.Fatal(err)
	}
	var mit strings.Builder
	if err := run(&mit, []string{"-log", logPath, "-parallel", "0", "-mitigate", "graduated"}); err != nil {
		t.Fatal(err)
	}
	out := mit.String()
	for _, want := range []string{"Mitigation replay (graduated", "Tarpit", "Challenge", "Block"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "Alert diversity") {
		t.Error("detection tables missing from mitigate run")
	}
	// The replay must classify something: a dataset with scrapers cannot
	// be all-Allow under the graduated policy.
	if tableCount(t, out, "Tarpit")+tableCount(t, out, "Challenge")+tableCount(t, out, "Block") == 0 {
		t.Error("graduated replay took no adverse action on a scraper-bearing log")
	}

	var sb strings.Builder
	if err := run(&sb, []string{"-log", logPath, "-mitigate", "warp"}); err == nil {
		t.Error("invalid -mitigate accepted")
	}
}

// tableCount extracts the Count cell of the named row from rendered
// report output, tolerant of column widths.
func tableCount(t *testing.T, out, row string) int {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 2 && fields[0] == row {
			n, err := strconv.Atoi(strings.ReplaceAll(fields[1], ",", ""))
			if err != nil {
				t.Fatalf("row %q count %q not numeric", row, fields[1])
			}
			return n
		}
	}
	t.Fatalf("row %q not found in output:\n%s", row, out)
	return 0
}

func TestRunWithoutLabels(t *testing.T) {
	dir := t.TempDir()
	logPath, _ := writeDataset(t, dir)
	var sb strings.Builder
	if err := run(&sb, []string{"-log", logPath}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "Labelled metrics") {
		t.Error("labelled metrics printed without labels")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-log", "/does/not/exist"}); err == nil {
		t.Error("missing log accepted")
	}
	if err := run(&sb, []string{"-mode", "warp"}); err == nil {
		t.Error("invalid mode accepted")
	}

	// A label sidecar shorter than the log must be reported.
	dir := t.TempDir()
	logPath, _ := writeDataset(t, dir)
	short := filepath.Join(dir, "short.csv")
	if err := os.WriteFile(short, []byte("seq,actor_id,archetype\n0,1,human\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&sb, []string{"-log", logPath, "-labels", short}); err == nil {
		t.Error("truncated label sidecar accepted")
	}

	// Relaxed mode refuses every output that depends on a single in-order
	// decision stream, and the truncated sidecar is caught there too.
	for _, extra := range [][]string{
		{"-mitigate", "graduated"},
		{"-out", filepath.Join(dir, "v.csv")},
		{"-trace-out", filepath.Join(dir, "t.jsonl")},
		{"-explain", "10.0.0.1"},
		{"-checkpoint", filepath.Join(dir, "ck.bin")},
	} {
		args := append([]string{"-log", logPath, "-mode", "relaxed"}, extra...)
		if err := run(&sb, args); err == nil {
			t.Errorf("relaxed mode accepted %v", extra)
		}
	}
	if err := run(&sb, []string{"-log", logPath, "-mode", "relaxed", "-labels", short}); err == nil {
		t.Error("relaxed run accepted truncated label sidecar")
	}
	if err := run(&sb, []string{"-log", logPath, "-parse-workers", "-1"}); err == nil {
		t.Error("negative -parse-workers accepted")
	}
	if err := run(&sb, []string{"-log", logPath, "-follow", "-parse-workers", "2"}); err == nil {
		t.Error("-parse-workers accepted with -follow")
	}
}

// The -detectors flag swaps the detector set end to end: three-way runs
// print three-way tables and a three-column verdict CSV, mitigation uses
// a 2-of-3 quorum without erroring, modes agree with each other, and bad
// selections are rejected up front.
func TestRunDetectorsFlag(t *testing.T) {
	dir := t.TempDir()
	logPath, labelPath := writeDataset(t, dir)
	outPath := filepath.Join(dir, "verdicts3.csv")

	var seq strings.Builder
	err := run(&seq, []string{
		"-log", logPath, "-labels", labelPath,
		"-detectors", "sentinel,arcane,trajectory",
		"-mode", "seq", "-out", outPath, "-mitigate", "graduated",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := seq.String()
	for _, want := range []string{
		"All tools", "None",
		"sentinel only", "arcane only", "trajectory only",
		"Labelled metrics", "Mitigation replay",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("three-way output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Both tools") {
		t.Error("three-way run printed the pair-shaped row label")
	}

	verdicts, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(strings.TrimSpace(string(verdicts)), "\n", 2)[0]
	want := "seq,sentinel_alert,sentinel_score,arcane_alert,arcane_score,trajectory_alert,trajectory_score"
	if header != want {
		t.Errorf("verdict header = %q, want %q", header, want)
	}

	// Sharded and relaxed runs must print the identical tables (headers
	// aside): every aggregate is an order-free count. The baseline is a
	// plain sequential run — mitigation and the CSV are ordered-only
	// extras the parallel modes don't print.
	tablesOf := func(s string) string {
		i := strings.Index(s, "Alert diversity")
		if i < 0 {
			t.Fatalf("no diversity table in output:\n%s", s)
		}
		return s[i:]
	}
	var plain strings.Builder
	err = run(&plain, []string{
		"-log", logPath, "-labels", labelPath,
		"-detectors", "sentinel,arcane,trajectory", "-mode", "seq",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"shard", "relaxed"} {
		var sb strings.Builder
		err := run(&sb, []string{
			"-log", logPath, "-labels", labelPath,
			"-detectors", "sentinel,arcane,trajectory",
			"-mode", mode, "-parallel", "3",
		})
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if got, want := tablesOf(sb.String()), tablesOf(plain.String()); got != want {
			t.Errorf("mode %s tables differ from sequential:\n got:\n%s\n want:\n%s", mode, got, want)
		}
	}

	var sb strings.Builder
	if err := run(&sb, []string{"-log", logPath, "-detectors", "sentinel,arcana"}); err == nil {
		t.Error("unknown detector name accepted")
	}
	if err := run(&sb, []string{"-log", logPath, "-detectors", "arcane,arcane"}); err == nil {
		t.Error("duplicate detector accepted")
	}
	if err := run(&sb, []string{"-log", logPath, "-detectors", " , "}); err == nil {
		t.Error("empty detector list accepted")
	}
}
