package main

import (
	"sync/atomic"
	"time"

	"divscrape/internal/checkpoint"
	"divscrape/internal/cluster"
	"divscrape/internal/stream"
)

// The follow-mode failure plane's operator surface: a watchdog that
// notices the state plane or the tail degrading — checkpoint saves
// failing, log reads erroring — and logs + counts each healthy ↔
// degraded transition, plus the /debug/divscrape/health document
// reporting both alongside the checkpoint generation age. The process
// keeps running through either failure (a missed checkpoint degrades
// durability, not detection; a read error is retried with backoff), so
// the watchdog is how an operator learns the service is limping.

// watchdogEvery is the sink-event period between watchdog polls.
const watchdogEvery = 256

// watchdog tracks failure counters across polls. All state is atomic:
// poll runs on the sink goroutine, the health endpoint reads
// concurrently.
type watchdog struct {
	saver *checkpoint.Saver // nil without -checkpoint
	fl    *stream.Follower  // nil without -follow
	logf  func(format string, args ...any)

	degraded    atomic.Bool
	transitions atomic.Uint64
	seenFails   atomic.Uint64
	seenReads   atomic.Uint64
}

func newWatchdog(saver *checkpoint.Saver, fl *stream.Follower, logf func(string, ...any)) *watchdog {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &watchdog{saver: saver, fl: fl, logf: logf}
}

// poll compares the failure counters against the previous poll: new
// failures flip the watchdog degraded (logged and counted once per
// transition), a quiet interval flips it back.
func (w *watchdog) poll() {
	var fails, reads uint64
	if w.saver != nil {
		fails = w.saver.Stats().Failures
	}
	if w.fl != nil {
		reads = w.fl.Stats().ReadErrors
	}
	// Both swaps run unconditionally: short-circuiting the second would
	// skip recording read errors whenever checkpoint failures already
	// tripped the watchdog, and the stale baseline would re-detect them
	// next poll — a spurious extra degraded interval.
	newFails := fails > w.seenFails.Swap(fails)
	newReads := reads > w.seenReads.Swap(reads)
	unhealthy := newFails || newReads
	was := w.degraded.Swap(unhealthy)
	switch {
	case unhealthy && !was:
		w.transitions.Add(1)
		w.logf("degraded: checkpoint failures=%d, follower read errors=%d", fails, reads)
	case !unhealthy && was:
		w.logf("recovered: state plane and tail healthy")
	}
}

// checkpointHealth is the state-plane section of the health document.
type checkpointHealth struct {
	Saves    uint64 `json:"saves"`
	Retries  uint64 `json:"retries"`
	Failures uint64 `json:"failures"`
	// AgeSeconds is how stale the newest generation is; -1 before the
	// first save. Durability going stale shows here long before a
	// restart needs the checkpoint.
	AgeSeconds float64   `json:"age_seconds"`
	LastSave   time.Time `json:"last_save,omitzero"`
	Retain     int       `json:"retain"`
}

// followerHealth is the ingestion section of the health document.
type followerHealth struct {
	ReadErrors  uint64 `json:"read_errors"`
	Rotations   uint64 `json:"rotations"`
	Truncations uint64 `json:"truncations"`
	Skipped     uint64 `json:"skipped"`
}

// healthDoc is the JSON served at /debug/divscrape/health. Healthy is
// mirrored in the HTTP status (200/503) so a load-balancer check needs
// no parsing.
type healthDoc struct {
	Healthy             bool              `json:"healthy"`
	DegradedTransitions uint64            `json:"degraded_transitions"`
	Checkpoint          *checkpointHealth `json:"checkpoint,omitempty"`
	Follower            *followerHealth   `json:"follower,omitempty"`
	// Cluster is the replication plane's membership and delta-flow
	// snapshot; nil without -cluster-listen. A degraded cluster node does
	// not flip Healthy — it keeps enforcing on local state by design, and
	// the section itself says so.
	Cluster *cluster.Status `json:"cluster,omitempty"`
}

// health assembles the document from the watchdog's sources.
func (w *watchdog) health(retain int) healthDoc {
	doc := healthDoc{
		Healthy:             !w.degraded.Load(),
		DegradedTransitions: w.transitions.Load(),
	}
	if w.saver != nil {
		st := w.saver.Stats()
		ch := &checkpointHealth{
			Saves:      st.Saves,
			Retries:    st.Retries,
			Failures:   st.Failures,
			AgeSeconds: -1,
			LastSave:   st.LastSave,
			Retain:     retain,
		}
		if age := w.saver.Age(); age >= 0 {
			ch.AgeSeconds = age.Seconds()
		}
		doc.Checkpoint = ch
	}
	if w.fl != nil {
		fs := w.fl.Stats()
		doc.Follower = &followerHealth{
			ReadErrors:  fs.ReadErrors,
			Rotations:   fs.Rotations,
			Truncations: fs.Truncations,
			Skipped:     fs.Skipped,
		}
	}
	return doc
}
