// Command scrapedetect replays an Apache access log (Combined Log Format)
// through both detectors and reports alert totals and the diversity
// contingency table; with a label sidecar it also reports per-tool
// sensitivity and specificity. With -follow it runs as a live service
// instead, tailing an actively written (and rotated) log with bounded
// memory.
//
// Usage:
//
//	scrapedetect -log access.log [-detectors sentinel,arcane,trajectory] [-labels labels.csv] [-parallel N] [-mode seq|conc|shard|relaxed] [-parse-workers N] [-out verdicts.csv] [-mitigate observe|tag|block|graduated] [-save-state f] [-load-state f] [-cpuprofile cpu.out] [-memprofile mem.out]
//	scrapedetect -follow -log access.log [-metrics-addr :9090] [-window 2h] [-checkpoint state.bin -checkpoint-every 100000] [-mitigate graduated]
//
// -detectors picks which detectors judge the stream (default the paper's
// pair, sentinel and arcane; add trajectory for the semantic navigation
// channel). Every downstream surface — the diversity table, labelled
// metrics, verdict CSV, live alert counters, mitigation quorum and trace
// records — follows the selected set.
//
// By default the log is partitioned by client IP across GOMAXPROCS worker
// shards (-parallel); pass -parallel 0 (or 1) for the single-threaded
// reference pipeline. seq, conc and shard produce byte-identical verdict
// streams; -mode relaxed drops the stream-order merge — every request
// still gets the identical verdict and per-client order is preserved, but
// cross-client interleaving is not, so the summary tables (all
// order-free counts) match exactly while order-dependent outputs
// (-out, -mitigate, -trace-out, -explain, -checkpoint) are refused.
// conc is deprecated: it models the paper's deployment shape (both
// detectors judging the same request in parallel) and adds hand-off
// overhead that usually exceeds the detector work; for parallel
// throughput use -mode relaxed, for ordered parallelism -mode shard.
// -parse-workers additionally fans the replay's log parsing across
// goroutines (chunked on newline boundaries, order preserved) — useful
// on multi-core hosts where ingest, not detection, is the wall.
//
// -mitigate replays the decision stream through a response engine and
// reports what each policy *would have done* to the recorded traffic — a
// what-if: the logged clients never saw the enforcement, so they do not
// react to it.
//
// -save-state checkpoints every per-client detection history (and the
// -mitigate engine's ladder state) after the replay; -load-state restores
// one before it. Splitting a log at any line and replaying the halves in
// two processes with a checkpoint between them produces verdict streams
// identical to one uninterrupted run — rotated daily logs can be analysed
// day by day without losing multi-day session memory. The state file is
// topology-independent: it can be saved from a sequential run and loaded
// into a sharded one, or vice versa.
//
// # Live operation
//
// -follow turns the replay into a long-running service: the log is
// tailed through rotation and truncation, ingestion is backpressure-aware
// (the pipeline pulls, the file buffers), and the pipeline defaults to
// sequential — a live tail is latency-bound, not throughput-bound, and
// the sharded producer's count-paced batching could hold verdicts behind
// a partial batch on a quiet log (pass -parallel N explicitly to opt
// in). Windowed eviction (-window,
// default two hours) bounds every stateful layer — detector session
// stores, and the -mitigate engine via the event-time sweeper — so
// steady-state memory is O(clients active in the window) over days of
// uptime. -metrics-addr serves /debug/divscrape/metrics (Prometheus
// text; ?format=json for JSON) and /debug/divscrape/state.
// -checkpoint/-checkpoint-every persist the full detection state
// periodically through the durable state plane, so a restarted follower
// resumes with its session memory intact (-load-state the checkpoint).
// SIGINT/SIGTERM stop the tail, drain buffered lines, write a final
// checkpoint and print the summary tables.
//
// # Tracing and provenance
//
// -trace records per-stage latency histograms (parse, enrich, per-detector
// detect, ensemble, sink — plus merge and per-shard occupancy in shard
// mode) into the metrics registry and samples decisions into a bounded
// flight recorder served at /debug/divscrape/trace and
// /debug/divscrape/explain. -trace-out writes every captured record as
// JSON lines to a file (an audit stream); -explain CLIENT always captures
// one client and prints its provenance timeline — per-detector verdicts,
// feature vectors, mitigation rung transitions — after the replay. Both
// imply -trace and default to the sequential pipeline, where feature
// snapshots are coherent with the sink. -pprof additionally serves
// net/http/pprof under /debug/pprof/ on -metrics-addr;
// -block-profile-rate and -mutex-profile-fraction arm the corresponding
// runtime profiles for it.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"divscrape/internal/alertlog"
	"divscrape/internal/arcane"
	"divscrape/internal/checkpoint"
	"divscrape/internal/detector"
	"divscrape/internal/evaluate"
	"divscrape/internal/iprep"
	"divscrape/internal/logfmt"
	"divscrape/internal/metrics"
	"divscrape/internal/mitigate"
	"divscrape/internal/pipeline"
	"divscrape/internal/report"
	"divscrape/internal/sentinel"
	"divscrape/internal/sitemodel"
	"divscrape/internal/statecodec"
	"divscrape/internal/stream"
	"divscrape/internal/trace"
	"divscrape/internal/trajectory"
	"divscrape/internal/workload"
)

// buildDetectors resolves the -detectors list into live detectors plus
// the factories the sharded pipeline clones per-shard state from. The
// trajectory factory hands every shard the same trained model — the
// model is immutable after training, so sharing it is what keeps shard
// verdicts identical to the sequential run's.
func buildDetectors(names []string) ([]detector.Detector, []detector.Factory, error) {
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("-detectors must name at least one detector")
	}
	dets := make([]detector.Detector, 0, len(names))
	facts := make([]detector.Factory, 0, len(names))
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if seen[name] {
			return nil, nil, fmt.Errorf("duplicate detector %q in -detectors", name)
		}
		seen[name] = true
		var f detector.Factory
		switch name {
		case "sentinel":
			f = func() (detector.Detector, error) { return sentinel.New(sentinel.Config{}) }
		case "arcane":
			f = func() (detector.Detector, error) { return arcane.New(arcane.Config{}) }
		case "trajectory":
			f = func() (detector.Detector, error) {
				model, err := trajectory.DefaultModel()
				if err != nil {
					return nil, err
				}
				return trajectory.New(trajectory.Config{Model: model})
			}
		default:
			return nil, nil, fmt.Errorf("unknown detector %q (want sentinel, arcane or trajectory)", name)
		}
		d, err := f()
		if err != nil {
			return nil, nil, err
		}
		dets = append(dets, d)
		facts = append(facts, f)
	}
	return dets, facts, nil
}

// splitDetectorNames parses the -detectors flag value.
func splitDetectorNames(s string) []string {
	var names []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			names = append(names, part)
		}
	}
	return names
}

// alertAgreement generalises the pair contingency table to N detectors:
// how often all alert, none alert, and exactly one alerts (per
// detector). For two detectors the four cells are exactly the paper's
// Table 2 — Both, Neither, A-only, B-only.
type alertAgreement struct {
	all, none uint64
	only      []uint64
}

func newAlertAgreement(n int) *alertAgreement {
	return &alertAgreement{only: make([]uint64, n)}
}

// add records one decision and returns the alert vote count.
func (a *alertAgreement) add(verdicts []detector.Verdict) int {
	votes, last := 0, -1
	for i := range verdicts {
		if verdicts[i].Alert {
			votes++
			last = i
		}
	}
	switch {
	case votes == 0:
		a.none++
	case votes == len(verdicts):
		a.all++
	}
	if votes == 1 {
		a.only[last]++
	}
	return votes
}

// merge folds another agreement table (same detector set) into a.
func (a *alertAgreement) merge(o *alertAgreement) {
	a.all += o.all
	a.none += o.none
	for i := range o.only {
		a.only[i] += o.only[i]
	}
}

// modeNameOf names a pipeline mode for the summary header.
func modeNameOf(m pipeline.Mode) string {
	switch m {
	case pipeline.Concurrent:
		return "conc"
	case pipeline.Sharded:
		return "shard"
	case pipeline.ShardedRelaxed:
		return "relaxed"
	default:
		return "seq"
	}
}

// mitigationPolicy resolves the -mitigate flag.
func mitigationPolicy(name string) (mitigate.Policy, error) {
	switch name {
	case "observe":
		return mitigate.Observe(), nil
	case "tag":
		return mitigate.Tag(), nil
	case "block":
		return mitigate.StaticBlock(false), nil
	case "graduated":
		return mitigate.Graduated(), nil
	default:
		return mitigate.Policy{}, fmt.Errorf("invalid -mitigate %q (want observe, tag, block or graduated)", name)
	}
}

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "scrapedetect:", err)
		os.Exit(1)
	}
}

// saveStateTo checkpoints the pipeline (and the -mitigate engine, when
// present) through a crash-safe saver: the versioned, checksummed frame
// is written to a temp file, fsynced and atomically renamed over the
// newest generation, with the previous generations rotated down a slot
// and transient write failures retried with backoff — a crash or a full
// disk at any instant leaves every earlier generation intact.
func saveStateTo(s *checkpoint.Saver, pipe *pipeline.Pipeline, engine *mitigate.Engine) error {
	w := statecodec.NewWriter()
	if err := pipe.Checkpoint(w); err != nil {
		return fmt.Errorf("save state: %w", err)
	}
	w.Bool(engine != nil)
	if engine != nil {
		engine.SnapshotInto(w)
	}
	return s.Save(w)
}

// loadStateFile restores a checkpoint, falling back generation by
// generation past damaged snapshots (a torn newest file after a crash
// restores from the previous generation instead of failing the boot).
// The pipeline must be configured like the saving run's (the shard
// count may differ), and the presence of -mitigate must match — an
// engine's ladder state cannot be silently dropped or invented; that
// mismatch aborts the walk rather than falling back, because an older
// generation would mismatch identically.
func loadStateFile(path string, pipe *pipeline.Pipeline, engine *mitigate.Engine) error {
	restore := func(r *statecodec.Reader) error {
		if err := pipe.ResumeFrom(r); err != nil {
			return err
		}
		hasEngine := r.Bool()
		if err := r.Err(); err != nil {
			return err
		}
		switch {
		case hasEngine && engine == nil:
			return fmt.Errorf("file carries mitigation state; pass the same -mitigate policy it was saved with")
		case !hasEngine && engine != nil:
			return fmt.Errorf("file carries no mitigation state; drop -mitigate or re-save with it")
		case hasEngine:
			if err := engine.RestoreFrom(r); err != nil {
				return err
			}
		}
		return nil
	}
	gen, err := checkpoint.Load(path, restore)
	if err != nil {
		return fmt.Errorf("load state: %w", err)
	}
	if gen > 0 {
		fmt.Fprintf(os.Stderr, "scrapedetect: newest checkpoint generation damaged; restored generation %d of %s\n", gen, path)
	}
	return nil
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("scrapedetect", flag.ContinueOnError)
	logPath := fs.String("log", "access.log", "access log to analyse")
	detectorsFlag := fs.String("detectors", "sentinel,arcane", "comma-separated detectors to run: sentinel, arcane, trajectory")
	labelPath := fs.String("labels", "", "optional label sidecar for sensitivity/specificity")
	mode := fs.String("mode", "", "pipeline mode: seq, conc (deprecated), shard or relaxed (default derived from -parallel)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "worker shards for shard/relaxed modes; 0 or 1 runs sequentially (conc is deprecated: prefer -mode relaxed for parallel throughput)")
	parseWorkers := fs.Int("parse-workers", 1, "parallel log-parse workers for replays (chunked on line boundaries, entry order preserved); 0 selects GOMAXPROCS, incompatible with -follow")
	outPath := fs.String("out", "", "optional per-request verdict CSV output")
	mitigateName := fs.String("mitigate", "", "replay a response policy over the decisions: observe, tag, block or graduated")
	saveState := fs.String("save-state", "", "after the replay, checkpoint all detection (and -mitigate) state to this file")
	loadState := fs.String("load-state", "", "before the replay, restore detection state from this file; the run continues as if never interrupted")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the analysis to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile (taken after the analysis) to this file")
	follow := fs.Bool("follow", false, "tail -log as it is written (surviving rotation) instead of replaying it; stop with SIGINT/SIGTERM")
	metricsAddr := fs.String("metrics-addr", "", "serve /debug/divscrape/metrics and /debug/divscrape/state on this address")
	window := fs.Duration("window", 0, "windowed-eviction retention for per-client state; 0 selects 2h in follow mode and disables eviction in replay mode")
	evictEvery := fs.Duration("evict-every", 0, "eviction sweep cadence in event time; 0 selects window/4")
	checkpointPath := fs.String("checkpoint", "", "periodically checkpoint all detection (and -mitigate) state to this file while running")
	checkpointEvery := fs.Int("checkpoint-every", 100_000, "events between periodic checkpoints")
	checkpointRetain := fs.Int("checkpoint-retain", 3, "checkpoint generations to retain (the newest plus N-1 older fallbacks)")
	maxEvents := fs.Uint64("max-events", 0, "stop after this many events (0 = unlimited); mainly for smoke tests of follow mode")
	traceFlag := fs.Bool("trace", false, "record per-stage latency histograms and sample decisions into the flight recorder")
	traceOut := fs.String("trace-out", "", "write every captured flight record as JSON lines to this file (implies -trace)")
	explainClient := fs.String("explain", "", "always capture this client's decisions and print its provenance timeline after the run (implies -trace)")
	pprofHTTP := fs.Bool("pprof", false, "also serve net/http/pprof under /debug/pprof/ on -metrics-addr")
	clusterListen := fs.String("cluster-listen", "", "serve cluster state deltas on this address and replicate mitigation state with -cluster-peers (requires -follow and -mitigate); the exact string is also this node's identity in peers' -cluster-peers lists")
	clusterPeers := fs.String("cluster-peers", "", "comma-separated peer -cluster-listen addresses to replicate with")
	clusterDegraded := fs.String("cluster-degraded", "fail-open", "quorum-loss behaviour: fail-open keeps enforcing on local state, fail-closed additionally freezes ladder escalation until the partition heals")
	blockRate := fs.Int("block-profile-rate", 0, "runtime.SetBlockProfileRate argument; 0 leaves blocking profiles off")
	mutexFrac := fs.Int("mutex-profile-fraction", 0, "runtime.SetMutexProfileFraction argument; 0 leaves mutex profiles off")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tracing := *traceFlag || *traceOut != "" || *explainClient != ""
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
		defer runtime.SetBlockProfileRate(0)
	}
	if *mutexFrac > 0 {
		runtime.SetMutexProfileFraction(*mutexFrac)
		defer runtime.SetMutexProfileFraction(0)
	}
	if *window < 0 {
		return fmt.Errorf("invalid -window %v (want >= 0)", *window)
	}
	if *window == 0 && *follow {
		*window = 2 * time.Hour
	}
	if *checkpointPath != "" && *checkpointEvery <= 0 {
		return fmt.Errorf("invalid -checkpoint-every %d (want > 0)", *checkpointEvery)
	}
	if *checkpointRetain <= 0 {
		return fmt.Errorf("invalid -checkpoint-retain %d (want > 0)", *checkpointRetain)
	}
	clusterPol, err := degradedPolicyOf(*clusterDegraded)
	if err != nil {
		return err
	}
	if *clusterListen != "" {
		switch {
		case !*follow:
			return fmt.Errorf("-cluster-listen requires -follow (the cluster plane replicates live state)")
		case *mitigateName == "":
			return fmt.Errorf("-cluster-listen requires -mitigate (the enforcement ladder is what replicates)")
		case splitPeers(*clusterPeers, *clusterListen) == nil:
			return fmt.Errorf("-cluster-listen requires at least one peer in -cluster-peers")
		}
	}
	// Profiles cover the replay itself, so hot-path regressions can be
	// diagnosed straight from the CLI: run with -cpuprofile/-memprofile
	// and feed the output to `go tool pprof`.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("create cpu profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("start cpu profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("create mem profile: %w", err)
		}
		defer func() {
			runtime.GC() // settle allocations so the heap profile is sharp
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "scrapedetect: write mem profile:", err)
			}
			f.Close()
		}()
	}
	var engine *mitigate.Engine
	var challengeFlow bool
	if *mitigateName != "" {
		policy, err := mitigationPolicy(*mitigateName)
		if err != nil {
			return err
		}
		engine, err = mitigate.New(policy)
		if err != nil {
			return err
		}
		// Mirror httpguard: only a challenge-capable policy hosts (and
		// therefore exempts) the challenge flow; under static policies
		// those requests are ordinary traffic.
		challengeFlow = policy.UsesChallenge()
	}
	// The reputation feed is hoisted out of the pipeline config so the
	// cluster backend can replicate its dynamic overlay.
	rep := iprep.BuildFeed()
	var clusterBE *engineBackend
	if *clusterListen != "" {
		clusterBE = newEngineBackend(engine, rep)
	}
	if *parallel < 0 {
		return fmt.Errorf("invalid -parallel %d (want >= 0)", *parallel)
	}

	// -mode wins when given; otherwise -parallel picks between the
	// sequential reference and the sharded pipeline. Follow mode defaults
	// to sequential unless parallelism was explicitly requested: a live
	// tail is latency-sensitive (the sharded producer batches hand-offs
	// by request count, so on a quiet log a partial batch can hold
	// verdicts back for hours of wall time), and the sequential pipeline
	// already sustains >1M req/s — far beyond any single log file.
	parallelSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "parallel" {
			parallelSet = true
		}
	})
	var pmode pipeline.Mode
	switch *mode {
	case "seq":
		pmode = pipeline.Sequential
	case "conc":
		pmode = pipeline.Concurrent
	case "shard":
		pmode = pipeline.Sharded
	case "relaxed":
		pmode = pipeline.ShardedRelaxed
	case "":
		switch {
		case *follow && !parallelSet:
			pmode = pipeline.Sequential
		case (*traceOut != "" || *explainClient != "") && !parallelSet:
			// The recorder modes default to sequential: feature snapshots
			// alias the detectors' scratch vectors, which only stay valid
			// while the sink runs synchronously with InspectInto.
			pmode = pipeline.Sequential
		case *parallel > 1:
			pmode = pipeline.Sharded
		default:
			pmode = pipeline.Sequential
		}
	default:
		return fmt.Errorf("invalid -mode %q (want seq, conc, shard or relaxed)", *mode)
	}
	if pmode == pipeline.ShardedRelaxed {
		// Relaxed mode trades the stream-order merge away, so everything
		// that depends on a single in-order decision stream is refused
		// up front rather than silently degraded: the verdict CSV is
		// written by sequence into a dense table, the mitigation ladder
		// is stateful across clients, the flight recorder's audit stream
		// and explain timelines snapshot features synchronously, and the
		// periodic checkpoint quiesces only the sequential pipeline.
		switch {
		case *mitigateName != "":
			return fmt.Errorf("-mitigate requires an ordered pipeline (-mode seq or shard)")
		case *outPath != "":
			return fmt.Errorf("-out requires an ordered pipeline (-mode seq or shard)")
		case *traceOut != "":
			return fmt.Errorf("-trace-out requires the sequential pipeline (-mode seq)")
		case *explainClient != "":
			return fmt.Errorf("-explain requires the sequential pipeline (-mode seq)")
		case *checkpointPath != "":
			return fmt.Errorf("-checkpoint requires the sequential pipeline (-mode seq)")
		}
	}
	if *parseWorkers < 0 {
		return fmt.Errorf("invalid -parse-workers %d (want >= 0)", *parseWorkers)
	}
	if *parseWorkers != 1 && *follow {
		return fmt.Errorf("-parse-workers applies to replays; -follow tails a live log line by line")
	}
	if *checkpointPath != "" && pmode != pipeline.Sequential {
		// Quiescing for a periodic checkpoint aborts a concurrent/sharded
		// run mid-window: entries already pulled from the source but not
		// yet sinked would be dropped, silently desynchronising the
		// checkpoint from the verdict stream. Only the sequential
		// pipeline stops exactly at the sink.
		return fmt.Errorf("-checkpoint requires the sequential pipeline (-parallel 0 or -mode seq)")
	}
	if *explainClient != "" && pmode != pipeline.Sequential {
		// An explain timeline without feature vectors cannot answer "why";
		// refuse the degraded form rather than serve it silently.
		return fmt.Errorf("-explain requires the sequential pipeline (-parallel 0 or -mode seq)")
	}
	shards := *parallel
	if shards <= 1 {
		shards = 1
	}
	if pmode != pipeline.Sharded && pmode != pipeline.ShardedRelaxed {
		shards = 1
	}

	dets, factories, err := buildDetectors(splitDetectorNames(*detectorsFlag))
	if err != nil {
		return err
	}
	detNames := make([]string, len(dets))
	for i, d := range dets {
		detNames[i] = d.Name()
	}
	// The mitigation quorum: a strict majority of the selected detectors
	// confirms a request (both-of-two for the paper's pair, two-of-three
	// with trajectory added).
	confirmVotes := len(dets)/2 + 1

	// The registry is created before the pipeline so the tracer's stage
	// histograms and the sink counters share one scrape page; the tracer
	// itself stays nil — the disabled plane — unless a trace mode asked
	// for it.
	reg := metrics.NewRegistry()
	var tracer *trace.Tracer
	var traceBuf *bufio.Writer
	if tracing {
		recCfg := trace.RecorderConfig{}
		if *explainClient != "" {
			recCfg.Clients = []string{*explainClient}
		}
		if *traceOut != "" {
			tf, err := os.Create(*traceOut)
			if err != nil {
				return fmt.Errorf("create -trace-out: %w", err)
			}
			defer tf.Close()
			traceBuf = bufio.NewWriterSize(tf, 1<<16)
			enc := json.NewEncoder(traceBuf)
			recCfg.Sink = func(r trace.Record) { _ = enc.Encode(r) }
		}
		tshards := 0
		if pmode == pipeline.Sharded || pmode == pipeline.ShardedRelaxed {
			tshards = shards
		}
		tracer = trace.New(trace.Config{
			Registry:  reg,
			Detectors: detNames,
			Shards:    tshards,
			Relaxed:   pmode == pipeline.ShardedRelaxed,
			Recorder:  recCfg,
		})
	}

	pipe, err := pipeline.New(pipeline.Config{
		Detectors:   dets,
		Factories:   factories,
		Reputation:  rep,
		Mode:        pmode,
		Shards:      shards,
		EvictWindow: *window,
		EvictEvery:  *evictEvery,
		Trace:       tracer,
	})
	if err != nil {
		return err
	}

	// The event-time sweeper bounds the layers outside the pipeline — the
	// mitigation engine's ladder state — on the same retention window the
	// pipeline's internal sweeps use.
	var sweeper *stream.Sweeper
	if engine != nil && *window > 0 {
		sweeper, err = stream.NewSweeper(*window, *evictEvery, nil)
		if err != nil {
			return err
		}
		if clusterBE != nil {
			// Route eviction through the backend's lock so a sweep cannot
			// race a peer merge arriving on an HTTP goroutine.
			sweeper.Register("mitigate", clusterBE)
		} else {
			sweeper.Register("mitigate", engine)
		}
	}

	if *loadState != "" {
		if err := loadStateFile(*loadState, pipe, engine); err != nil {
			return err
		}
	}

	var labels []detector.Label
	if *labelPath != "" {
		lf, err := os.Open(*labelPath)
		if err != nil {
			return err
		}
		labels, err = workload.ReadLabels(lf)
		lf.Close()
		if err != nil {
			return err
		}
	}

	// Build the entry source: a rotation-surviving tail in follow mode, a
	// plain streaming reader for replays. Both are pull-based, so the
	// pipeline's capacity is the only backpressure mechanism needed.
	var src pipeline.EntrySource
	var follower *stream.Follower
	if *follow {
		follower, err = stream.NewFollower(stream.FollowerConfig{Path: *logPath})
		if err != nil {
			return err
		}
		defer follower.Close()
		src = follower.Next
		sigCh := make(chan os.Signal, 1)
		signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sigCh)
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-sigCh:
				follower.Stop()
			case <-done:
			}
		}()
	} else {
		f, err := os.Open(*logPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if *parseWorkers != 1 {
			// Chunked parallel parse: newline-aligned chunks fan out to
			// worker goroutines and reassemble in sequence, so the entry
			// stream is byte-identical to the plain reader's.
			plr := logfmt.NewParallelReader(f, logfmt.ParallelConfig{
				Policy:  logfmt.Skip,
				Workers: *parseWorkers,
			})
			defer plr.Close()
			src = func() (logfmt.Entry, error) {
				var e logfmt.Entry
				err := plr.NextInto(&e)
				return e, err
			}
		} else {
			lr := logfmt.NewReader(f, logfmt.ReaderConfig{Policy: logfmt.Skip})
			src = lr.Next
		}
	}

	// The crash-safe saver behind periodic checkpoints, and the watchdog
	// that surfaces its failures (plus the follower's read errors) on the
	// health endpoint. Both exist only when there is something to watch.
	var ckSaver *checkpoint.Saver
	if *checkpointPath != "" {
		ckSaver, err = checkpoint.NewSaver(checkpoint.Config{
			Path:   *checkpointPath,
			Retain: *checkpointRetain,
		})
		if err != nil {
			return err
		}
	}
	wd := newWatchdog(ckSaver, follower, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "scrapedetect: watchdog: "+format+"\n", args...)
	})

	live := newLiveMetrics(reg, pipe, follower, sweeper)
	live.wireFailurePlane(wd, ckSaver, *checkpointRetain)
	live.wireTrace(tracer.Recorder(), *pprofHTTP)
	if clusterBE != nil {
		peers := splitPeers(*clusterPeers, *clusterListen)
		clu, err := startCluster(*clusterListen, peers, clusterPol, clusterBE, tracer.Recorder(),
			func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "scrapedetect: "+format+"\n", args...)
			})
		if err != nil {
			return err
		}
		defer clu.shutdown()
		clu.node.RegisterMetrics(reg)
		live.wireCluster(clu.node)
		fmt.Fprintf(os.Stderr, "scrapedetect: cluster node %s on %s (%d peers, %s)\n",
			*clusterListen, clu.addr, len(peers), clusterPol)
	}
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		srv := &http.Server{Handler: live.handler(modeNameOf(pmode), shards, *follow, *window)}
		go func() { _ = srv.Serve(ln) }()
		// Graceful teardown: a scrape in flight when the run ends finishes
		// inside the deadline instead of seeing a reset connection.
		defer shutdownServer(srv, debugShutdownTimeout)
		fmt.Fprintf(os.Stderr, "scrapedetect: metrics on http://%s/debug/divscrape/metrics\n", ln.Addr())
	}

	var verdictOut *alertlog.Writer
	if *outPath != "" {
		of, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer of.Close()
		verdictOut, err = alertlog.NewWriter(of, pipe.Detectors())
		if err != nil {
			return err
		}
	}

	var (
		agree       = newAlertAgreement(len(dets))
		confs       = make([]evaluate.Confusion, len(dets))
		total       uint64
		tagged      uint64
		passed      uint64
		checkpoints uint64
		segment     int
	)
	// Sentinels steering the run loop: a due checkpoint quiesces the
	// (sequential) pipeline so the state plane can serialise it, then the
	// same Run/source pair continues where it stopped; the event bound
	// ends the run cleanly.
	errCheckpointDue := errors.New("checkpoint due")
	errMaxEvents := errors.New("event bound reached")
	// Feature snapshots are only coherent in sequential mode, where the
	// sink runs on the same goroutine as InspectInto; elsewhere flight
	// records carry verdicts and reasons but no vectors.
	// explainers aligns index-for-index with the detector list (nil slots
	// for detectors without an explainer surface).
	var explainers []detector.Explainer
	if tracer != nil && pmode == pipeline.Sequential {
		explainers = make([]detector.Explainer, len(dets))
		for i, d := range dets {
			if ex, ok := d.(detector.Explainer); ok {
				explainers[i] = ex
			}
		}
	}
	sink := func(d pipeline.Decision) error {
		votes := agree.add(d.Verdicts)
		live.events.Inc()
		for i := range d.Verdicts {
			if d.Verdicts[i].Alert {
				live.alerts[i].Inc()
			}
		}
		if sweeper != nil {
			sweeper.Observe(d.Req.Entry.Time)
		}
		var dec mitigate.Decision
		var rungBefore mitigate.Action
		judged := false
		if engine != nil {
			// With the cluster plane wired, peer merges reach the engine on
			// HTTP goroutines; the sink's accesses serialise on the same
			// lock. A nil backend makes both calls no-ops.
			clusterBE.lockEngine()
			e := &d.Req.Entry
			// The challenge flow itself is exempt, mirroring httpguard and
			// the closed-loop experiments: script fetches never count
			// against the client, beacons mark the challenge solved.
			switch {
			case challengeFlow && e.Path == sitemodel.ChallengeScriptPath:
			case challengeFlow && e.Path == sitemodel.ChallengeVerifyPath && e.Method == "POST":
				engine.ChallengePassed(e.RemoteAddr, e.Time)
				passed++
			default:
				if tracer != nil {
					rungBefore = engine.Level(e.RemoteAddr)
				}
				ts := tracer.Now()
				var scoreSum float64
				for i := range d.Verdicts {
					scoreSum += d.Verdicts[i].Score
				}
				dec = engine.Apply(e.RemoteAddr, e.Time, mitigate.Assessment{
					Alerted:   votes > 0,
					Confirmed: votes >= confirmVotes,
					Score:     scoreSum / float64(len(d.Verdicts)),
				})
				tracer.Lap(trace.StageEnsemble, ts)
				judged = true
				if dec.Tagged {
					tagged++
					live.tagged.Inc()
				}
			}
			clusterBE.unlockEngine()
		}
		if tracer != nil {
			captureDecision(tracer, detNames, &d, judged, dec, rungBefore, explainers)
		}
		if verdictOut != nil {
			if err := verdictOut.WriteAt(d.Req.Seq, d.Verdicts); err != nil {
				return err
			}
		}
		if labels != nil {
			if d.Req.Seq >= uint64(len(labels)) {
				return fmt.Errorf("label sidecar shorter than log (request %d)", d.Req.Seq)
			}
			malicious := labels[d.Req.Seq].Malicious()
			for i := range d.Verdicts {
				confs[i].Add(d.Verdicts[i].Alert, malicious)
			}
		}
		total++
		if total%watchdogEvery == 0 {
			wd.poll()
		}
		if *maxEvents > 0 && total >= *maxEvents {
			if follower != nil {
				follower.Stop()
			}
			return errMaxEvents
		}
		if *checkpointPath != "" {
			if segment++; segment >= *checkpointEvery {
				segment = 0
				return errCheckpointDue
			}
		}
		return nil
	}
	started := time.Now()
	if pmode == pipeline.ShardedRelaxed {
		// Shards deliver independently into private partial tables (every
		// table is a commutative count, so the merged totals are identical
		// to an ordered run's); the live metrics and the flight recorder
		// are concurrency-safe and shared. The watchdog has nothing to
		// poll here — periodic checkpoints are refused in this mode and a
		// follower read failure already terminates the run as the source
		// error.
		type relaxedAgg struct {
			agree *alertAgreement
			confs []evaluate.Confusion
			total uint64
		}
		aggs := make([]relaxedAgg, pipe.Shards())
		sinks := make([]pipeline.Sink, pipe.Shards())
		var processed atomic.Uint64
		for i := range sinks {
			agg := &aggs[i]
			agg.agree = newAlertAgreement(len(dets))
			agg.confs = make([]evaluate.Confusion, len(dets))
			sinks[i] = func(d pipeline.Decision) error {
				agg.agree.add(d.Verdicts)
				live.events.Inc()
				for j := range d.Verdicts {
					if d.Verdicts[j].Alert {
						live.alerts[j].Inc()
					}
				}
				if tracer != nil {
					captureDecision(tracer, detNames, &d, false, mitigate.Decision{}, 0, nil)
				}
				if labels != nil {
					if d.Req.Seq >= uint64(len(labels)) {
						return fmt.Errorf("label sidecar shorter than log (request %d)", d.Req.Seq)
					}
					malicious := labels[d.Req.Seq].Malicious()
					for j := range d.Verdicts {
						agg.confs[j].Add(d.Verdicts[j].Alert, malicious)
					}
				}
				agg.total++
				if *maxEvents > 0 && processed.Add(1) >= *maxEvents {
					if follower != nil {
						follower.Stop()
					}
					return errMaxEvents
				}
				return nil
			}
		}
		err = pipe.RunRelaxed(context.Background(), src, sinks)
		if errors.Is(err, errMaxEvents) {
			err = nil
		}
		if err != nil {
			return err
		}
		for i := range aggs {
			agree.merge(aggs[i].agree)
			for j := range confs {
				confs[j].Merge(aggs[i].confs[j])
			}
			total += aggs[i].total
		}
	} else {
		for {
			err = pipe.Run(context.Background(), src, sink)
			switch {
			case errors.Is(err, errCheckpointDue):
				// A failed periodic checkpoint degrades durability, not
				// detection: the run continues on the previous generations and
				// the watchdog flags the process degraded until a save lands.
				if err := saveStateTo(ckSaver, pipe, engine); err != nil {
					fmt.Fprintf(os.Stderr, "scrapedetect: periodic checkpoint failed (state plane degraded, will retry): %v\n", err)
				} else {
					checkpoints++
					live.checkpoints.Inc()
				}
				wd.poll()
				continue
			case errors.Is(err, errMaxEvents):
				err = nil
			}
			if err != nil {
				return err
			}
			break
		}
	}
	if verdictOut != nil {
		if err := verdictOut.Flush(); err != nil {
			return err
		}
	}
	if traceBuf != nil {
		if err := traceBuf.Flush(); err != nil {
			return fmt.Errorf("flush -trace-out: %w", err)
		}
	}
	// The final saves stay fatal: unlike a periodic checkpoint (where the
	// run continues and retries later), an exit without durable state is
	// exactly what -checkpoint/-save-state exist to prevent.
	if ckSaver != nil {
		if err := saveStateTo(ckSaver, pipe, engine); err != nil {
			return err
		}
		checkpoints++
		live.checkpoints.Inc()
	}
	if *saveState != "" {
		finalSaver, err := checkpoint.NewSaver(checkpoint.Config{Path: *saveState, Retain: 1})
		if err != nil {
			return err
		}
		if err := saveStateTo(finalSaver, pipe, engine); err != nil {
			return err
		}
	}
	elapsed := time.Since(started)

	fmt.Fprintf(w, "analysed %s requests in %v (%.0f req/s, mode=%s, shards=%d)\n\n",
		report.Count(total), elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(), modeNameOf(pmode), shards)
	if *follow {
		fs := follower.Stats()
		sweeps, evicted := pipe.EvictionStats()
		if sweeper != nil {
			s2, e2 := sweeper.Stats()
			sweeps += s2
			evicted += e2
		}
		fmt.Fprintf(w, "follow: rotations=%d truncations=%d skipped=%d sweeps=%d evicted=%d checkpoints=%d\n\n",
			fs.Rotations, fs.Truncations, fs.Skipped, sweeps, evicted, checkpoints)
	}

	t := &report.Table{
		Title:   "Alert diversity",
		Columns: []string{"Bucket", "Count", "Share"},
		Aligns:  []report.Align{report.Left, report.Right, report.Right},
	}
	allLabel, noneLabel := "All tools", "None"
	if len(dets) == 2 {
		allLabel, noneLabel = "Both tools", "Neither"
	}
	t.AddRow(allLabel, report.Count(agree.all), report.Percent(agree.all, total))
	t.AddRow(noneLabel, report.Count(agree.none), report.Percent(agree.none, total))
	for i, name := range detNames {
		t.AddRow(name+" only", report.Count(agree.only[i]), report.Percent(agree.only[i], total))
	}
	if err := t.Render(w); err != nil {
		return err
	}

	if engine != nil {
		counts := engine.Counts()
		denom := counts.Total()
		fmt.Fprintln(w)
		mt := &report.Table{
			Title:   "Mitigation replay (" + *mitigateName + ", what-if)",
			Columns: []string{"Action", "Count", "Share"},
			Aligns:  []report.Align{report.Left, report.Right, report.Right},
		}
		mt.AddRow("Allow", report.Count(counts.Allowed), report.Percent(counts.Allowed, denom))
		mt.AddRow("Tarpit", report.Count(counts.Tarpitted), report.Percent(counts.Tarpitted, denom))
		mt.AddRow("Challenge", report.Count(counts.Challenged), report.Percent(counts.Challenged, denom))
		mt.AddRow("Block", report.Count(counts.Blocked), report.Percent(counts.Blocked, denom))
		mt.AddRow("Tagged", report.Count(tagged), report.Percent(tagged, denom))
		mt.AddRow("Challenges passed", report.Count(passed), "")
		if err := mt.Render(w); err != nil {
			return err
		}
	}

	if labels != nil {
		fmt.Fprintln(w)
		m := &report.Table{
			Title:   "Labelled metrics",
			Columns: append([]string{"Metric"}, detNames...),
			Aligns:  append([]report.Align{report.Left}, make([]report.Align, len(dets))...),
		}
		for i := range dets {
			m.Aligns[i+1] = report.Right
		}
		row := func(name string, f func(*evaluate.Confusion) float64) {
			cells := make([]string, 0, len(confs)+1)
			cells = append(cells, name)
			for i := range confs {
				cells = append(cells, report.Metric(f(&confs[i])))
			}
			m.AddRow(cells...)
		}
		row("Sensitivity", (*evaluate.Confusion).Sensitivity)
		row("Specificity", (*evaluate.Confusion).Specificity)
		row("Precision", (*evaluate.Confusion).Precision)
		row("F1", (*evaluate.Confusion).F1)
		if err := m.Render(w); err != nil {
			return err
		}
	}

	if *explainClient != "" {
		fmt.Fprintln(w)
		printExplain(w, tracer.Recorder().Explain(*explainClient))
	}
	return nil
}
