package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"divscrape/internal/cluster"
	"divscrape/internal/iprep"
	"divscrape/internal/mitigate"
	"divscrape/internal/trace"
)

// Cluster plane for follow mode: -cluster-listen turns one follower into
// a member of a replicated detection cluster. Each node keeps judging its
// own log locally and ships periodic state deltas — mitigation ladder
// digests and reputation-overlay entries — to its peers over HTTP, so a
// client split across nodes (or re-routed after a node failure) is met
// with the enforcement rung it already earned elsewhere. Detector session
// stores stay node-local: they are confined to the pipeline goroutine and
// rebuild organically from traffic (the embedded httpguard deployment
// shape ships session digests too; see httpguard/cluster.go).

// engineBackend adapts the follow pipeline's singleton response state —
// the -mitigate engine and the reputation overlay — to the cluster
// replication contract. The engine is single-threaded by design, so every
// access from the cluster plane (peer merges arrive on HTTP serving
// goroutines, outbound digests are collected on the tick goroutine) locks
// mu; the sink goroutine takes the same lock around its engine calls. The
// overlay is copy-on-write behind an atomic pointer and needs no locking.
type engineBackend struct {
	mu     sync.Mutex
	engine *mitigate.Engine
	rep    *iprep.DB
}

func newEngineBackend(engine *mitigate.Engine, rep *iprep.DB) *engineBackend {
	return &engineBackend{engine: engine, rep: rep}
}

// lockEngine/unlockEngine bracket the sink's engine accesses. Both are
// no-ops on a nil backend, so the sink stays branch-free about whether
// the cluster plane is wired.
func (b *engineBackend) lockEngine() {
	if b != nil {
		b.mu.Lock()
	}
}

func (b *engineBackend) unlockEngine() {
	if b != nil {
		b.mu.Unlock()
	}
}

func (b *engineBackend) LadderDigestsSince(since time.Time, fn func(mitigate.ClientDigest)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.engine.DigestsSince(since, fn)
}

func (b *engineBackend) MergeLadderDigest(d mitigate.ClientDigest) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.engine.MergeDigest(d)
}

func (b *engineBackend) OverlayEntries(fn func(iprep.TempEntry)) {
	b.rep.TempEntries(fn)
}

func (b *engineBackend) MergeOverlayEntry(e iprep.TempEntry) bool {
	return b.rep.MergeTemporary(e)
}

// SessionDigestsSince is deliberately empty: the CLI's detector session
// stores are confined to the pipeline goroutine, so this deployment shape
// replicates enforcement state only and lets sessions rebuild from
// traffic after a failover.
func (b *engineBackend) SessionDigestsSince(time.Time, func(cluster.SessionDigest)) {}

func (b *engineBackend) SetEscalationFrozen(frozen bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.engine.SetEscalationFrozen(frozen)
}

// EvictBefore lets the windowed sweeper drive the engine through the
// same lock the cluster plane uses, keeping eviction serialised with
// peer merges.
func (b *engineBackend) EvictBefore(cutoff time.Time) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.engine.EvictBefore(cutoff)
}

// degradedPolicyOf resolves the -cluster-degraded flag.
func degradedPolicyOf(name string) (cluster.DegradedPolicy, error) {
	switch name {
	case "", "fail-open":
		return cluster.FailOpen, nil
	case "fail-closed":
		return cluster.FailClosed, nil
	default:
		return 0, fmt.Errorf("invalid -cluster-degraded %q (want fail-open or fail-closed)", name)
	}
}

// splitPeers parses the -cluster-peers list, dropping empties and the
// node's own address (listing yourself is a config-templating artefact,
// not an error).
func splitPeers(list, self string) []string {
	var peers []string
	for _, p := range strings.Split(list, ",") {
		if p = strings.TrimSpace(p); p != "" && p != self {
			peers = append(peers, p)
		}
	}
	return peers
}

// clusterTickEvery is the wall-clock cadence of the node's Tick loop —
// a quarter of the default delta interval, so failure detection and
// retry deadlines are observed promptly without busy-spinning.
const clusterTickEvery = 250 * time.Millisecond

// clusterSendTimeout is the per-exchange HTTP deadline — half the
// default 1s delta interval, so even a tick that blocks on a
// black-holed peer for the full timeout cannot push the heartbeat
// cadence past what the failure detector expects of this node.
const clusterSendTimeout = 500 * time.Millisecond

// warnWildcardListen flags the cluster-identity footgun: the listen
// string doubles as the node ID stamped into every outbound frame, and
// receivers look that ID up in their own -cluster-peers list. A
// wildcard or empty host (":8001", "0.0.0.0:8001") can never match the
// concrete host:port peers dial, so every frame this node sends would
// be dropped as from-unknown-peer on arrival — with nothing else at
// startup hinting at the misconfiguration.
func warnWildcardListen(listen string, logf func(string, ...any)) {
	host, _, err := net.SplitHostPort(listen)
	if err != nil {
		return // net.Listen will report the malformed address itself
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		logf("cluster: -cluster-listen %q has a wildcard host; the listen string is this node's ID, and peers drop frames from IDs missing from their -cluster-peers — use the concrete address peers dial (host:port)", listen)
	}
}

// clusterRuntime bundles what -cluster-listen starts: the node, the
// delta listener, and the tick loop driving it.
type clusterRuntime struct {
	node *cluster.Node
	srv  *http.Server
	addr net.Addr
	stop chan struct{}
	done chan struct{}
}

// startCluster stands the cluster plane up: a node identified by the
// listen address, an HTTP listener serving peer deltas, and a goroutine
// ticking the node on the wall clock. The listen string doubles as the
// node's identity — peers must name this node by exactly that string in
// their own -cluster-peers.
func startCluster(listen string, peers []string, pol cluster.DegradedPolicy,
	be *engineBackend, rec *trace.Recorder, logf func(string, ...any)) (*clusterRuntime, error) {
	warnWildcardListen(listen, logf)
	node, err := cluster.New(cluster.Config{
		ID:        listen,
		Peers:     peers,
		Backend:   be,
		Transport: cluster.NewHTTPTransport(clusterSendTimeout),
		Degraded:  pol,
		Trace:     rec,
		OnEvent: func(ev cluster.Event) {
			logf("cluster: %s peer=%s %s", ev.Kind, ev.Peer, ev.Detail)
		},
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("cluster listener: %w", err)
	}
	c := &clusterRuntime{
		node: node,
		srv:  &http.Server{Handler: cluster.Handler(node)},
		addr: ln.Addr(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() { _ = c.srv.Serve(ln) }()
	go func() {
		defer close(c.done)
		tick := time.NewTicker(clusterTickEvery)
		defer tick.Stop()
		for {
			select {
			case <-c.stop:
				return
			case now := <-tick.C:
				c.node.Tick(now)
			}
		}
	}()
	return c, nil
}

// shutdown stops the tick loop and drains the delta server gracefully:
// an in-flight peer delta gets until the deadline to finish merging, then
// the listener is torn down hard.
func (c *clusterRuntime) shutdown() {
	close(c.stop)
	<-c.done
	shutdownServer(c.srv, debugShutdownTimeout)
}

// debugShutdownTimeout bounds how long exit waits for in-flight HTTP
// requests (a slow metrics scrape, a peer delta mid-merge) to complete.
const debugShutdownTimeout = 5 * time.Second

// shutdownServer drains srv gracefully: the listener closes immediately
// (no new connections), in-flight requests get until the deadline to
// complete, and only then is the server torn down hard.
func shutdownServer(srv *http.Server, timeout time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		_ = srv.Close()
	}
}
