package main

import (
	"encoding/json"
	"net/http"
	netpprof "net/http/pprof"
	"time"

	"divscrape/internal/checkpoint"
	"divscrape/internal/cluster"
	"divscrape/internal/metrics"
	"divscrape/internal/pipeline"
	"divscrape/internal/stream"
	"divscrape/internal/trace"
)

// liveMetrics is the CLI's observability surface for follow mode: a
// registry mixing sink-updated counters (events, per-detector alerts,
// checkpoints — plain atomics, safe against the serving goroutine) with
// read-only instruments over the follower's and sweeper's own atomic
// counters. Everything a scraper reads is lock-free; nothing reads the
// single-threaded engine or detector state.
type liveMetrics struct {
	reg    *metrics.Registry
	events *metrics.Counter
	// alerts holds one counter per pipeline detector, in detector order.
	alerts      []*metrics.Counter
	tagged      *metrics.Counter
	checkpoints *metrics.Counter

	// The sources the func instruments and the state endpoint read; held
	// here so construction and serving cannot wire different instances.
	pipe *pipeline.Pipeline
	fl   *stream.Follower
	sw   *stream.Sweeper

	// Failure plane (wired by wireFailurePlane; nil in plain replays and
	// in tests that never wire it, where the health endpoint reports
	// permanently healthy).
	wd     *watchdog
	retain int

	// Provenance plane (wired by wireTrace; nil recorder means the trace
	// and explain endpoints report tracing disabled).
	rec     *trace.Recorder
	pprofOn bool

	// Cluster plane (wired by wireCluster; nil without -cluster-listen).
	cnode *cluster.Node
}

// newLiveMetrics builds the surface over a caller-owned registry, so the
// tracer's stage histograms (registered by trace.New before the pipeline
// is built) and the sink counters here end up on one scrape page.
func newLiveMetrics(r *metrics.Registry, pipe *pipeline.Pipeline, fl *stream.Follower, sw *stream.Sweeper) *liveMetrics {
	if r == nil {
		r = metrics.NewRegistry()
	}
	m := &liveMetrics{reg: r, pipe: pipe, fl: fl, sw: sw}
	m.events = r.MustCounter("divscrape_events_total", "Log entries judged.")
	for _, name := range pipe.Detectors() {
		m.alerts = append(m.alerts, r.MustCounter("divscrape_alerts_total",
			"Per-detector alerts.", metrics.Label{Key: "detector", Value: name}))
	}
	m.tagged = r.MustCounter("divscrape_tagged_total", "Requests the response policy tagged.")
	m.checkpoints = r.MustCounter("divscrape_checkpoints_total", "State checkpoints written.")

	r.MustCounterFunc("divscrape_evict_sweeps_total", "Windowed eviction sweeps run.",
		func() uint64 {
			s, _ := pipe.EvictionStats()
			if sw != nil {
				s2, _ := sw.Stats()
				s += s2
			}
			return s
		})
	r.MustCounterFunc("divscrape_evicted_total", "State entries dropped by windowed sweeps.",
		func() uint64 {
			_, e := pipe.EvictionStats()
			if sw != nil {
				_, e2 := sw.Stats()
				e += e2
			}
			return e
		})
	if fl != nil {
		stat := func(read func(stream.FollowerStats) uint64) func() uint64 {
			return func() uint64 { return read(fl.Stats()) }
		}
		r.MustCounterFunc("divscrape_follow_lines_total", "Well-formed lines ingested.",
			stat(func(s stream.FollowerStats) uint64 { return s.Lines }))
		r.MustCounterFunc("divscrape_follow_bytes_total", "Raw log bytes consumed.",
			stat(func(s stream.FollowerStats) uint64 { return s.Bytes }))
		r.MustCounterFunc("divscrape_follow_skipped_total", "Malformed lines dropped.",
			stat(func(s stream.FollowerStats) uint64 { return s.Skipped }))
		r.MustCounterFunc("divscrape_follow_rotations_total", "Log rotations survived.",
			stat(func(s stream.FollowerStats) uint64 { return s.Rotations }))
		r.MustCounterFunc("divscrape_follow_truncations_total", "In-place truncations handled.",
			stat(func(s stream.FollowerStats) uint64 { return s.Truncations }))
		r.MustCounterFunc("divscrape_follow_read_errors_total", "Transient read failures retried with backoff.",
			stat(func(s stream.FollowerStats) uint64 { return s.ReadErrors }))
	}
	return m
}

// wireFailurePlane attaches the watchdog and checkpoint saver to the
// observability surface: the health endpoint starts reporting them, and
// the registry grows state-plane instruments. Must run before the
// handler is served.
func (m *liveMetrics) wireFailurePlane(wd *watchdog, saver *checkpoint.Saver, retain int) {
	m.wd, m.retain = wd, retain
	m.reg.MustCounterFunc("divscrape_degraded_transitions_total",
		"Healthy-to-degraded watchdog transitions.", wd.transitions.Load)
	m.reg.MustGaugeFunc("divscrape_degraded",
		"1 while the watchdog considers the process degraded.", func() int64 {
			if wd.degraded.Load() {
				return 1
			}
			return 0
		})
	if saver != nil {
		m.reg.MustCounterFunc("divscrape_checkpoint_saves_total",
			"Successful state checkpoints.", func() uint64 { return saver.Stats().Saves })
		m.reg.MustCounterFunc("divscrape_checkpoint_retries_total",
			"Checkpoint write attempts retried.", func() uint64 { return saver.Stats().Retries })
		m.reg.MustCounterFunc("divscrape_checkpoint_failures_total",
			"Checkpoint saves that exhausted their retries.", func() uint64 { return saver.Stats().Failures })
		m.reg.MustGaugeFunc("divscrape_checkpoint_age_seconds",
			"Age of the newest checkpoint generation; -1 before the first save.", func() int64 {
				age := saver.Age()
				if age < 0 {
					return -1
				}
				return int64(age.Seconds())
			})
	}
}

// wireTrace attaches the provenance plane to the debug mux: the flight
// recorder behind /debug/divscrape/trace and /debug/divscrape/explain,
// and — explicitly opted into — net/http/pprof. Must run before the
// handler is served.
func (m *liveMetrics) wireTrace(rec *trace.Recorder, pprofOn bool) {
	m.rec, m.pprofOn = rec, pprofOn
}

// wireCluster attaches the cluster node so the health endpoint reports
// membership, degradation and replication lag alongside the failure
// plane. Must run before the handler is served.
func (m *liveMetrics) wireCluster(n *cluster.Node) { m.cnode = n }

// liveState is the JSON document served at /debug/divscrape/state.
type liveState struct {
	Mode        string                `json:"mode"`
	Shards      int                   `json:"shards"`
	Follow      bool                  `json:"follow"`
	EvictWindow time.Duration         `json:"evict_window_ns"`
	Events      uint64                `json:"events"`
	Sweeps      uint64                `json:"sweeps"`
	Evicted     uint64                `json:"evicted"`
	Checkpoints uint64                `json:"checkpoints"`
	Follower    *stream.FollowerStats `json:"follower,omitempty"`
}

// handler serves the metrics registry and the state snapshot under the
// same /debug/divscrape/ paths httpguard uses, so dashboards work against
// either deployment shape.
func (m *liveMetrics) handler(mode string, shards int, follow bool, window time.Duration) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/debug/divscrape/metrics", m.reg.Handler())
	mux.HandleFunc("/debug/divscrape/state", func(w http.ResponseWriter, r *http.Request) {
		st := liveState{
			Mode:        mode,
			Shards:      shards,
			Follow:      follow,
			EvictWindow: window,
			Events:      m.events.Value(),
			Checkpoints: m.checkpoints.Value(),
		}
		st.Sweeps, st.Evicted = m.pipe.EvictionStats()
		if m.sw != nil {
			s, e := m.sw.Stats()
			st.Sweeps += s
			st.Evicted += e
		}
		if m.fl != nil {
			fs := m.fl.Stats()
			st.Follower = &fs
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
	mux.HandleFunc("/debug/divscrape/health", func(w http.ResponseWriter, r *http.Request) {
		doc := healthDoc{Healthy: true}
		if m.wd != nil {
			doc = m.wd.health(m.retain)
		}
		if m.cnode != nil {
			st := m.cnode.Status()
			doc.Cluster = &st
		}
		w.Header().Set("Content-Type", "application/json")
		if !doc.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
	// The same trace/explain paths httpguard serves; a nil recorder
	// answers 404 "tracing disabled" rather than leaving the path unbound,
	// so dashboards can probe for the feature.
	mux.Handle("/debug/divscrape/trace", m.rec.TraceHandler())
	mux.Handle("/debug/divscrape/explain", m.rec.ExplainHandler())
	if m.pprofOn {
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	}
	return mux
}
