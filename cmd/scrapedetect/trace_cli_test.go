package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"divscrape/internal/trace"
)

// readTraceRecords decodes a -trace-out JSONL file.
func readTraceRecords(t *testing.T, path string) []trace.Record {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var recs []trace.Record
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var r trace.Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d not a flight record: %v\n%s", len(recs)+1, err, sc.Text())
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return recs
}

// -trace-out streams every captured flight record as JSON lines, in
// capture order, with per-detector verdicts attached.
func TestRunTraceOut(t *testing.T) {
	dir := t.TempDir()
	logPath, _ := writeDataset(t, dir)
	tracePath := filepath.Join(dir, "flight.jsonl")

	var sb strings.Builder
	if err := run(&sb, []string{"-log", logPath, "-trace-out", tracePath}); err != nil {
		t.Fatal(err)
	}
	// The recorder modes default to the sequential pipeline so feature
	// snapshots stay coherent.
	if !strings.Contains(sb.String(), "mode=seq") {
		t.Errorf("-trace-out did not default to sequential:\n%s", firstLine(sb.String()))
	}

	recs := readTraceRecords(t, tracePath)
	if len(recs) == 0 {
		t.Fatal("no flight records written")
	}
	var sawFeatures bool
	for i, r := range recs {
		if r.Sampled == "" {
			t.Fatalf("record %d written without a sampling reason: %+v", i, r)
		}
		if len(r.Detectors) != 2 {
			t.Fatalf("record %d carries %d detector records, want 2: %+v", i, len(r.Detectors), r)
		}
		if r.Client == "" || r.Time.IsZero() {
			t.Fatalf("record %d missing identity: %+v", i, r)
		}
		if i > 0 && r.Seq <= recs[i-1].Seq {
			t.Fatalf("records out of capture order: seq %d after %d", r.Seq, recs[i-1].Seq)
		}
		for _, dr := range r.Detectors {
			if len(dr.Features) > 0 {
				sawFeatures = true
			}
		}
	}
	if !sawFeatures {
		t.Error("no sequential flight record carries a feature snapshot")
	}
}

// -explain always captures the named client and prints its provenance
// timeline — per-detector verdicts, features and rung transitions —
// after the report tables.
func TestRunExplain(t *testing.T) {
	dir := t.TempDir()
	logPath, _ := writeDataset(t, dir)
	tracePath := filepath.Join(dir, "flight.jsonl")

	// Use the flight recorder itself to pick a client that alerted, so
	// the explain run has a story to tell.
	var sb strings.Builder
	if err := run(&sb, []string{"-log", logPath, "-trace-out", tracePath}); err != nil {
		t.Fatal(err)
	}
	client := ""
	for _, r := range readTraceRecords(t, tracePath) {
		if r.Alerted {
			client = r.Client
			break
		}
	}
	if client == "" {
		t.Fatal("dataset produced no alerted flight record to explain")
	}

	sb.Reset()
	if err := run(&sb, []string{"-log", logPath, "-mitigate", "graduated", "-explain", client}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "provenance for "+client+":") {
		t.Fatalf("explain timeline missing from output:\n%s", out)
	}
	tail := out[strings.Index(out, "provenance for "):]
	for _, want := range []string{"alerted=", "sentinel", "arcane", "features:", "action="} {
		if !strings.Contains(tail, want) {
			t.Errorf("explain timeline missing %q:\n%s", want, tail)
		}
	}
	// The report tables still precede the timeline.
	if !strings.Contains(out, "Alert diversity") {
		t.Error("detection tables missing from explain run")
	}
}

// -explain without the sequential pipeline would serve feature-less
// timelines; the CLI refuses the degraded form.
func TestRunExplainRequiresSequential(t *testing.T) {
	dir := t.TempDir()
	logPath, _ := writeDataset(t, dir)
	var sb strings.Builder
	if err := run(&sb, []string{"-log", logPath, "-mode", "conc", "-explain", "10.0.0.1"}); err == nil {
		t.Error("-explain accepted with the concurrent pipeline")
	}
	if err := run(&sb, []string{"-log", logPath, "-parallel", "4", "-explain", "10.0.0.1"}); err == nil {
		t.Error("-explain accepted with the sharded pipeline")
	}
}
