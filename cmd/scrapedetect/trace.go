package main

import (
	"fmt"
	"io"
	"strings"
	"time"

	"divscrape/internal/detector"
	"divscrape/internal/mitigate"
	"divscrape/internal/pipeline"
	"divscrape/internal/trace"
)

// The CLI side of the provenance plane. The pipeline records stage spans
// itself; decision capture is the sink's job, mirroring httpguard's
// judge-side capture: sample, upgrade for escalations and watched
// clients, then copy the full record out of the pipeline's pooled
// storage before the sink returns.

// captureDecision offers one sinked decision to the flight recorder.
// withEngine marks that dec/rungBefore carry a real mitigation outcome
// (a challenge-exempt request or an engine-less replay leaves the
// action/rung fields empty, matching Record's documented convention).
// ex aligns with the detector list; entries are nil outside sequential
// mode, where the sink is no longer synchronous with the scratch
// vectors the feature snapshots alias.
func captureDecision(tr *trace.Tracer, names []string, d *pipeline.Decision,
	withEngine bool, dec mitigate.Decision, rungBefore mitigate.Action, ex []detector.Explainer) {
	rec := tr.Recorder()
	kind := rec.Sample()
	if withEngine && dec.Level > rungBefore {
		kind = trace.SampleEscalation
	}
	if kind == trace.SampleNone && rec.WantClient(d.Req.Entry.RemoteAddr) {
		kind = trace.SampleClient
	}
	if kind == trace.SampleNone {
		return
	}
	r := trace.Record{
		Seq:       d.Req.Seq,
		Time:      d.Req.Entry.Time,
		Client:    d.Req.Entry.RemoteAddr,
		Sampled:   kind.String(),
		Confirmed: len(d.Verdicts) > 0,
	}
	var sum float64
	for i := range d.Verdicts {
		if d.Verdicts[i].Alert {
			r.Alerted = true
		} else {
			r.Confirmed = false
		}
		sum += d.Verdicts[i].Score
	}
	if len(d.Verdicts) > 0 {
		r.Suspicion = sum / float64(len(d.Verdicts))
	}
	if withEngine {
		r.Action = dec.Action.String()
		r.RungBefore = rungBefore.String()
		r.RungAfter = dec.Level.String()
		r.Suspicion = dec.Score
	}
	r.Detectors = make([]trace.DetectorRecord, len(d.Verdicts))
	for i := range d.Verdicts {
		var e detector.Explainer
		if i < len(ex) {
			e = ex[i]
		}
		r.Detectors[i] = trace.DetectorRecordOf(names[i], &d.Verdicts[i], e)
	}
	rec.Add(r)
}

// printExplain renders one client's provenance timeline as text: its
// captured decision records interleaved chronologically with the
// provenance events (quarantines, restores) that frame them.
func printExplain(w io.Writer, tl trace.Timeline) {
	fmt.Fprintf(w, "provenance for %s: %d records, %d events\n",
		tl.Client, len(tl.Records), len(tl.Events))
	i, j := 0, 0
	for i < len(tl.Records) || j < len(tl.Events) {
		if i >= len(tl.Records) ||
			(j < len(tl.Events) && !tl.Events[j].Time.After(tl.Records[i].Time)) {
			ev := tl.Events[j]
			j++
			fmt.Fprintf(w, "  %s  event %s shard=%d", ev.Time.Format(time.RFC3339), ev.Kind, ev.Shard)
			if ev.Detector != "" {
				fmt.Fprintf(w, " detector=%s", ev.Detector)
			}
			if ev.Detail != "" {
				fmt.Fprintf(w, " (%s)", ev.Detail)
			}
			fmt.Fprintln(w)
			continue
		}
		r := tl.Records[i]
		i++
		fmt.Fprintf(w, "  %s  seq=%d [%s] alerted=%t confirmed=%t",
			r.Time.Format(time.RFC3339), r.Seq, r.Sampled, r.Alerted, r.Confirmed)
		if r.Action != "" {
			fmt.Fprintf(w, " action=%s rung %s->%s", r.Action, r.RungBefore, r.RungAfter)
		}
		fmt.Fprintf(w, " suspicion=%.3f\n", r.Suspicion)
		for _, dr := range r.Detectors {
			fmt.Fprintf(w, "      %s:", dr.Detector)
			if dr.Skipped {
				fmt.Fprint(w, " skipped (quarantined)")
			}
			fmt.Fprintf(w, " alert=%t score=%.3f", dr.Alert, dr.Score)
			if len(dr.Reasons) > 0 {
				fmt.Fprintf(w, " reasons=%s", strings.Join(dr.Reasons, ","))
			}
			fmt.Fprintln(w)
			if len(dr.Features) > 0 {
				fmt.Fprint(w, "        features:")
				for _, f := range dr.Features {
					fmt.Fprintf(w, " %s=%.4g", f.Name, f.Value)
				}
				fmt.Fprintln(w)
			}
		}
	}
}
