package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"divscrape/internal/cluster"
	"divscrape/internal/detector"
	"divscrape/internal/iprep"
	"divscrape/internal/mitigate"
	"divscrape/internal/pipeline"
	"divscrape/internal/sentinel"
)

func TestClusterFlagValidation(t *testing.T) {
	var sb strings.Builder
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-cluster-listen", "127.0.0.1:9301"}, "-follow"},
		{[]string{"-follow", "-cluster-listen", "127.0.0.1:9301"}, "-mitigate"},
		{[]string{"-follow", "-mitigate", "graduated", "-cluster-listen", "127.0.0.1:9301"}, "-cluster-peers"},
		// A peers list that reduces to only the node itself is as empty.
		{[]string{"-follow", "-mitigate", "graduated",
			"-cluster-listen", "127.0.0.1:9301",
			"-cluster-peers", " , 127.0.0.1:9301 ,"}, "-cluster-peers"},
		{[]string{"-cluster-degraded", "fail-sideways"}, "-cluster-degraded"},
	}
	for _, tc := range cases {
		err := run(&sb, tc.args)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) = %v, want error mentioning %q", tc.args, err, tc.want)
		}
	}
}

func TestSplitPeers(t *testing.T) {
	got := splitPeers(" a:1, b:2 ,, c:3 ,a:1", "a:1")
	if len(got) != 2 || got[0] != "b:2" || got[1] != "c:3" {
		t.Fatalf("splitPeers = %v, want [b:2 c:3]", got)
	}
	if splitPeers("", "a:1") != nil {
		t.Fatal("empty list must parse to nil")
	}
}

func TestWarnWildcardListen(t *testing.T) {
	cases := []struct {
		listen string
		warn   bool
	}{
		{":9301", true},
		{"0.0.0.0:9301", true},
		{"[::]:9301", true},
		{"127.0.0.1:9301", false},
		{"node-a.internal:9301", false},
		{"not an address", false}, // net.Listen reports this itself
	}
	for _, tc := range cases {
		var got []string
		warnWildcardListen(tc.listen, func(f string, a ...any) {
			got = append(got, fmt.Sprintf(f, a...))
		})
		if warned := len(got) > 0; warned != tc.warn {
			t.Errorf("warnWildcardListen(%q) warned=%v (%v), want %v", tc.listen, warned, got, tc.warn)
		}
	}
}

// newClusterEngine builds a graduated engine plus its locked backend.
func newClusterEngine(t *testing.T) (*mitigate.Engine, *engineBackend) {
	t.Helper()
	eng, err := mitigate.New(mitigate.Graduated())
	if err != nil {
		t.Fatal(err)
	}
	return eng, newEngineBackend(eng, iprep.BuildFeed())
}

// TestClusterHTTPReplication proves the CLI deployment shape end to end:
// two engine backends joined by real loopback HTTP through the cluster
// node, transport and handler. A ladder climbed on one node and an
// overlay entry pushed there both appear on the peer after one delta
// interval. The clock is an atomic the test advances; ticks are driven
// by hand, so nothing here waits on the wall clock.
func TestClusterHTTPReplication(t *testing.T) {
	base := time.Unix(1520700000, 0)
	var nowNS atomic.Int64
	nowNS.Store(base.UnixNano())
	nowFn := func() time.Time { return time.Unix(0, nowNS.Load()) }

	eng1, be1 := newClusterEngine(t)
	_, be2 := newClusterEngine(t)

	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1, addr2 := ln1.Addr().String(), ln2.Addr().String()

	newNode := func(id, peer string, be *engineBackend) *cluster.Node {
		n, err := cluster.New(cluster.Config{
			ID:        id,
			Peers:     []string{peer},
			Backend:   be,
			Transport: cluster.NewHTTPTransport(2 * time.Second),
			Now:       nowFn,
			Rand:      func() float64 { return 0.5 },
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	node1 := newNode(addr1, addr2, be1)
	node2 := newNode(addr2, addr1, be2)

	srv1 := &http.Server{Handler: cluster.Handler(node1)}
	srv2 := &http.Server{Handler: cluster.Handler(node2)}
	go func() { _ = srv1.Serve(ln1) }()
	go func() { _ = srv2.Serve(ln2) }()
	t.Cleanup(func() {
		shutdownServer(srv1, time.Second)
		shutdownServer(srv2, time.Second)
	})

	// Climb the ladder for one client on node 1 and learn an overlay
	// entry there, through the same locked paths the sink uses.
	const client = "203.0.113.9"
	be1.lockEngine()
	for i := 0; i < 3; i++ {
		eng1.Apply(client, nowFn().Add(time.Duration(i)*time.Millisecond),
			mitigate.Assessment{Alerted: true, Confirmed: true, Score: 0.9})
	}
	be1.unlockEngine()
	be1.MergeOverlayEntry(iprep.TempEntry{
		Prefix: iprep.Prefix{IP: 0xC6336407, Bits: 32},
		Cat:    iprep.KnownScraper,
		Until:  base.Add(time.Hour),
	})

	node1.Tick(nowFn())
	node2.Tick(nowFn())
	nowNS.Store(base.Add(1100 * time.Millisecond).UnixNano())
	node1.Tick(nowFn()) // ships the delta to node 2 synchronously
	node2.Tick(nowFn())

	var levels []mitigate.Action
	be2.LadderDigestsSince(time.Time{}, func(d mitigate.ClientDigest) {
		if d.Key == client {
			levels = append(levels, d.Level)
		}
	})
	if len(levels) != 1 || levels[0] != mitigate.Block {
		t.Fatalf("peer ladder for %s = %v, want [Block]", client, levels)
	}
	found := false
	be2.OverlayEntries(func(e iprep.TempEntry) {
		if e.Prefix.IP == 0xC6336407 && e.Cat == iprep.KnownScraper {
			found = true
		}
	})
	if !found {
		t.Fatal("overlay entry did not replicate to the peer")
	}
	if st := node2.Status(); st.DeltasReceived == 0 || st.EntriesApplied < 2 {
		t.Fatalf("peer status %+v, want received deltas and applied entries", st)
	}
}

// TestHealthEndpointClusterSection: wiring a node into the live-metrics
// surface surfaces its membership snapshot at /debug/divscrape/health.
func TestHealthEndpointClusterSection(t *testing.T) {
	sen, err := sentinel.New(sentinel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := pipeline.New(pipeline.Config{
		Detectors:  []detector.Detector{sen},
		Reputation: iprep.BuildFeed(),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, be := newClusterEngine(t)
	node, err := cluster.New(cluster.Config{
		ID:        "node-a:9301",
		Peers:     []string{"node-b:9301"},
		Backend:   be,
		Transport: cluster.NewHTTPTransport(time.Second),
		Now:       func() time.Time { return time.Unix(1520700000, 0) },
	})
	if err != nil {
		t.Fatal(err)
	}

	live := newLiveMetrics(nil, pipe, nil, nil)
	node.RegisterMetrics(live.reg)
	live.wireCluster(node)
	srv := httptest.NewServer(live.handler("seq", 1, true, time.Hour))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/debug/divscrape/health")
	if err != nil {
		t.Fatal(err)
	}
	var doc healthDoc
	if err := json.NewDecoder(res.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if doc.Cluster == nil {
		t.Fatal("health document missing cluster section")
	}
	if doc.Cluster.ID != "node-a:9301" || doc.Cluster.Members != 2 {
		t.Fatalf("cluster section = %+v", doc.Cluster)
	}

	res, err = srv.Client().Get(srv.URL + "/debug/divscrape/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := bodyString(t, res.Body)
	res.Body.Close()
	if !strings.Contains(body, "divscrape_cluster_deltas_sent_total") {
		t.Fatalf("metrics page missing cluster instruments:\n%.400s", body)
	}
}
