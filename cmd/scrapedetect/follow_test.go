package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// countLines returns the number of newline-terminated records in a file.
func countLines(t *testing.T, path string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	for sc.Scan() {
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return n
}

// Follow mode over a fully written log with -max-events set to its exact
// line count consumes every entry, then stops cleanly and prints the same
// tables a replay would, plus the follow summary line.
func TestRunFollowConsumesAndStops(t *testing.T) {
	dir := t.TempDir()
	logPath, _ := writeDataset(t, dir)
	lines := countLines(t, logPath)

	var followOut strings.Builder
	err := run(&followOut, []string{
		"-follow", "-log", logPath, "-parallel", "0",
		"-max-events", strconv.Itoa(lines),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := followOut.String()
	if !strings.Contains(out, "follow: rotations=0") {
		t.Errorf("follow summary line missing:\n%s", firstLine(out))
	}
	if !strings.Contains(out, "Alert diversity") {
		t.Error("diversity table missing from follow run")
	}

	// The tables must match a plain replay byte for byte.
	var replayOut strings.Builder
	if err := run(&replayOut, []string{"-log", logPath, "-parallel", "0"}); err != nil {
		t.Fatal(err)
	}
	followTables := out[strings.Index(out, "Alert diversity"):]
	replayTables := replayOut.String()[strings.Index(replayOut.String(), "Alert diversity"):]
	if followTables != replayTables {
		t.Errorf("follow tables differ from replay:\n--- follow ---\n%s\n--- replay ---\n%s",
			followTables, replayTables)
	}
}

// Periodic checkpointing in follow mode writes a loadable state file, and
// a replay resumed from it continues the verdict stream (seq numbers keep
// counting from the checkpoint).
func TestRunFollowPeriodicCheckpoint(t *testing.T) {
	dir := t.TempDir()
	logPath, _ := writeDataset(t, dir)
	lines := countLines(t, logPath)
	ckpt := filepath.Join(dir, "state.bin")

	var sb strings.Builder
	err := run(&sb, []string{
		"-follow", "-log", logPath, "-parallel", "0",
		"-max-events", strconv.Itoa(lines),
		"-checkpoint", ckpt, "-checkpoint-every", "500",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "checkpoints=") {
		t.Errorf("follow summary missing checkpoint count:\n%s", sb.String())
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint file not written: %v", err)
	}

	// The checkpoint is a valid -load-state input: replaying a second log
	// on top of it must succeed and carry the sequence forward.
	outPath := filepath.Join(dir, "verdicts.csv")
	if err := run(&sb, []string{
		"-log", logPath, "-parallel", "0", "-load-state", ckpt, "-out", outPath,
	}); err != nil {
		t.Fatalf("resume from follow checkpoint: %v", err)
	}
	verdicts, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimSpace(string(verdicts)), "\n")
	// Row 1 (after the header) continues the checkpointed sequence.
	if len(rows) < 2 || !strings.HasPrefix(rows[1], strconv.Itoa(lines)+",") {
		t.Errorf("resumed verdict stream does not continue the sequence: %q", rows[1])
	}
}

func TestRunFollowFlagValidation(t *testing.T) {
	dir := t.TempDir()
	logPath, _ := writeDataset(t, dir)
	var sb strings.Builder
	if err := run(&sb, []string{"-log", logPath, "-window", "-5m"}); err == nil {
		t.Error("negative -window accepted")
	}
	if err := run(&sb, []string{
		"-follow", "-log", logPath, "-parallel", "4",
		"-checkpoint", filepath.Join(dir, "c.bin"),
	}); err == nil {
		t.Error("-checkpoint with a sharded follow accepted; it must require seq")
	}
	// The same guard applies to replay mode: a sharded run dropping its
	// in-flight window at each checkpoint would desynchronise the state
	// file from the verdict stream.
	if err := run(&sb, []string{
		"-log", logPath, "-parallel", "4", "-checkpoint", filepath.Join(dir, "c.bin"),
	}); err == nil {
		t.Error("-checkpoint with a sharded replay accepted; it must require seq")
	}
	if err := run(&sb, []string{
		"-log", logPath, "-checkpoint", filepath.Join(dir, "c.bin"), "-checkpoint-every", "0",
	}); err == nil {
		t.Error("zero -checkpoint-every accepted")
	}
}

// A replay with -window enabled (eviction on) produces the same tables as
// one without: the CLI face of the eviction-equivalence property.
func TestRunWindowedReplayMatchesPlain(t *testing.T) {
	dir := t.TempDir()
	logPath, labelPath := writeDataset(t, dir)
	var plain, windowed strings.Builder
	if err := run(&plain, []string{"-log", logPath, "-labels", labelPath, "-parallel", "0"}); err != nil {
		t.Fatal(err)
	}
	if err := run(&windowed, []string{
		"-log", logPath, "-labels", labelPath, "-parallel", "0", "-window", "2h",
	}); err != nil {
		t.Fatal(err)
	}
	if tablesOf(plain.String()) != tablesOf(windowed.String()) {
		t.Errorf("windowed replay tables differ:\n--- plain ---\n%s\n--- windowed ---\n%s",
			tablesOf(plain.String()), tablesOf(windowed.String()))
	}
}
