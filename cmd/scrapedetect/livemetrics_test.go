package main

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"divscrape/internal/iprep"
	"divscrape/internal/pipeline"
	"divscrape/internal/sentinel"

	"divscrape/internal/detector"
)

func TestLiveMetricsHandler(t *testing.T) {
	sen, err := sentinel.New(sentinel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := pipeline.New(pipeline.Config{
		Detectors:  []detector.Detector{sen},
		Reputation: iprep.BuildFeed(),
	})
	if err != nil {
		t.Fatal(err)
	}
	live := newLiveMetrics(nil, pipe, nil, nil)
	live.events.Add(7)
	live.alerts[0].Add(2)
	h := live.handler("seq", 1, false, 2*time.Hour)

	srv := httptest.NewServer(h)
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/debug/divscrape/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := bodyString(t, res.Body)
	res.Body.Close()
	for _, want := range []string{
		"divscrape_events_total 7",
		`divscrape_alerts_total{detector="sentinel"} 2`,
		"divscrape_evicted_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}

	res, err = srv.Client().Get(srv.URL + "/debug/divscrape/state")
	if err != nil {
		t.Fatal(err)
	}
	var st liveState
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if st.Mode != "seq" || st.Events != 7 || st.Follow {
		t.Errorf("state = %+v", st)
	}
	if st.EvictWindow != 2*time.Hour {
		t.Errorf("state window = %v", st.EvictWindow)
	}
}

// The -metrics-addr flag stands a real listener up for the duration of a
// run and tears it down afterwards; a loopback ephemeral port keeps the
// test hermetic.
func TestRunWithMetricsAddr(t *testing.T) {
	dir := t.TempDir()
	logPath, _ := writeDataset(t, dir)
	lines := countLines(t, logPath)
	var sb strings.Builder
	err := run(&sb, []string{
		"-follow", "-log", logPath, "-parallel", "0",
		"-max-events", strconv.Itoa(lines),
		"-metrics-addr", "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := run(&sb, []string{"-log", logPath, "-metrics-addr", "256.0.0.1:http"}); err == nil {
		t.Error("invalid -metrics-addr accepted")
	}
}

func bodyString(t *testing.T, r interface{ Read([]byte) (int, error) }) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}
