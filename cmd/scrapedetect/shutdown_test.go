package main

import (
	"io"
	"net"
	"net/http"
	"runtime"
	"testing"
	"time"
)

// Satellite of the cluster plane: the -metrics-addr debug server (and the
// cluster delta server, which shares shutdownServer) must drain in-flight
// requests on exit instead of resetting them. The slow scrape is
// coordinated entirely through channels — the handler blocks until the
// test releases it — so nothing here sleeps.

type scrapeResult struct {
	code int
	body string
	err  error
}

// startSlowServer serves a handler that signals entry and blocks until
// released, modelling a slow Prometheus scrape caught by process exit.
func startSlowServer(t *testing.T) (*http.Server, net.Addr, chan struct{}, chan struct{}) {
	t.Helper()
	entered := make(chan struct{})
	release := make(chan struct{})
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		io.WriteString(w, "scrape-complete")
	})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), entered, release
}

// scrape issues the GET on its own goroutine and delivers the outcome.
func scrape(addr net.Addr) chan scrapeResult {
	got := make(chan scrapeResult, 1)
	go func() {
		res, err := http.Get("http://" + addr.String() + "/debug/divscrape/metrics")
		if err != nil {
			got <- scrapeResult{err: err}
			return
		}
		b, err := io.ReadAll(res.Body)
		res.Body.Close()
		got <- scrapeResult{code: res.StatusCode, body: string(b), err: err}
	}()
	return got
}

func TestShutdownServerWaitsForInFlightScrape(t *testing.T) {
	srv, addr, entered, release := startSlowServer(t)
	got := scrape(addr)
	<-entered

	shutDone := make(chan struct{})
	go func() {
		shutdownServer(srv, 5*time.Second)
		close(shutDone)
	}()
	// Shutdown closes the listener before draining: wait for new
	// connections to be refused, proving the drain has begun while the
	// scrape is still being held open.
	for {
		c, err := net.Dial("tcp", addr.String())
		if err != nil {
			break
		}
		c.Close()
		runtime.Gosched()
	}
	select {
	case <-shutDone:
		t.Fatal("shutdown completed with a scrape still in flight")
	default:
	}

	close(release)
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight scrape failed across shutdown: %v", r.err)
	}
	if r.code != http.StatusOK || r.body != "scrape-complete" {
		t.Fatalf("in-flight scrape got %d %q, want 200 scrape-complete", r.code, r.body)
	}
	<-shutDone
}

func TestShutdownServerDeadlineForcesClose(t *testing.T) {
	srv, addr, entered, release := startSlowServer(t)
	defer close(release) // unblock the handler goroutine at test end
	got := scrape(addr)
	<-entered

	// A scrape that outlives the deadline is cut off rather than holding
	// the process exit hostage.
	shutdownServer(srv, time.Millisecond)
	r := <-got
	if r.err == nil && r.body == "scrape-complete" {
		t.Fatal("deadline-exceeding scrape completed; server never forced the close")
	}
}
