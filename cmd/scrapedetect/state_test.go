package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// splitLog writes the first k lines of src to head and the rest to tail.
func splitLog(t *testing.T, src string, k int, head, tail string) int {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	if k <= 0 || k >= len(lines) {
		t.Fatalf("cannot split %d lines at %d", len(lines), k)
	}
	if err := os.WriteFile(head, []byte(strings.Join(lines[:k], "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tail, []byte(strings.Join(lines[k:], "")), 0o644); err != nil {
		t.Fatal(err)
	}
	return len(lines)
}

// TestSaveLoadStateSmoke is the CLI's stop-at-k proof: replaying a log in
// two halves with -save-state / -load-state between the processes yields
// the same verdict CSV as one uninterrupted run — including when the
// resumed half runs at a different shard count, since the state file is
// topology-independent.
func TestSaveLoadStateSmoke(t *testing.T) {
	dir := t.TempDir()
	logPath, _ := writeDataset(t, dir)
	headLog := filepath.Join(dir, "head.log")
	tailLog := filepath.Join(dir, "tail.log")

	for _, tc := range []struct {
		name               string
		fullArgs, headArgs []string
		tailArgs           []string
	}{
		{
			name:     "shard3-resume-shard5",
			fullArgs: []string{"-parallel", "3"},
			headArgs: []string{"-parallel", "3"},
			tailArgs: []string{"-parallel", "5"},
		},
		{
			name:     "seq-mitigate-resume-seq",
			fullArgs: []string{"-parallel", "0", "-mitigate", "graduated"},
			headArgs: []string{"-parallel", "0", "-mitigate", "graduated"},
			tailArgs: []string{"-parallel", "0", "-mitigate", "graduated"},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fullCSV := filepath.Join(dir, tc.name+"-full.csv")
			var full strings.Builder
			if err := run(&full, append([]string{"-log", logPath, "-out", fullCSV}, tc.fullArgs...)); err != nil {
				t.Fatal(err)
			}

			data, err := os.ReadFile(logPath)
			if err != nil {
				t.Fatal(err)
			}
			k := strings.Count(string(data), "\n") / 2
			splitLog(t, logPath, k, headLog, tailLog)

			state := filepath.Join(dir, tc.name+".state")
			headCSV := filepath.Join(dir, tc.name+"-head.csv")
			tailCSV := filepath.Join(dir, tc.name+"-tail.csv")
			var head, tail strings.Builder
			if err := run(&head, append([]string{"-log", headLog, "-out", headCSV, "-save-state", state}, tc.headArgs...)); err != nil {
				t.Fatal(err)
			}
			if err := run(&tail, append([]string{"-log", tailLog, "-out", tailCSV, "-load-state", state}, tc.tailArgs...)); err != nil {
				t.Fatal(err)
			}

			fullOut := readFileT(t, fullCSV)
			headOut := readFileT(t, headCSV)
			tailOut := readFileT(t, tailCSV)
			// Each CSV opens with one header line; drop the resumed half's
			// when stitching.
			_, tailBody, ok := strings.Cut(tailOut, "\n")
			if !ok {
				t.Fatal("tail CSV empty")
			}
			if stitched := headOut + tailBody; stitched != fullOut {
				t.Fatalf("stop-at-%d + resume differs from uninterrupted run (%d vs %d bytes)",
					k, len(stitched), len(fullOut))
			}
		})
	}
}

// TestLoadStateMitigatePresenceMismatch: engine ladder state must not be
// silently dropped or invented across a resume.
func TestLoadStateMitigatePresenceMismatch(t *testing.T) {
	dir := t.TempDir()
	logPath, _ := writeDataset(t, dir)
	var sb strings.Builder

	withEngine := filepath.Join(dir, "with-engine.state")
	if err := run(&sb, []string{"-log", logPath, "-save-state", withEngine, "-mitigate", "graduated"}); err != nil {
		t.Fatal(err)
	}
	if err := run(&sb, []string{"-log", logPath, "-load-state", withEngine}); err == nil {
		t.Error("state with engine loaded into run without -mitigate")
	}

	withoutEngine := filepath.Join(dir, "without-engine.state")
	if err := run(&sb, []string{"-log", logPath, "-save-state", withoutEngine}); err != nil {
		t.Fatal(err)
	}
	if err := run(&sb, []string{"-log", logPath, "-load-state", withoutEngine, "-mitigate", "graduated"}); err == nil {
		t.Error("state without engine loaded into run with -mitigate")
	}

	// A corrupt state file must fail loudly, not half-restore.
	if err := os.WriteFile(withEngine, []byte("DVSCgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&sb, []string{"-log", logPath, "-load-state", withEngine}); err == nil {
		t.Error("corrupt state file accepted")
	}
}

func readFileT(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
