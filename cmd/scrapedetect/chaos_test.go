package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"divscrape/internal/checkpoint"
)

// TestChaosKillAndRestoreResumesFromIntactGeneration is the CLI-level
// crash drill: a run writing periodic checkpoints is "killed" with its
// newest generation torn mid-write (simulated by truncating it), and
// the restarted process must fall back to the next generation and
// resume — producing a stitched verdict CSV byte-identical to one
// uninterrupted run for the surviving prefix.
func TestChaosKillAndRestoreResumesFromIntactGeneration(t *testing.T) {
	dir := t.TempDir()
	logPath, _ := writeDataset(t, dir)

	// Split at a multiple of -checkpoint-every, so the last periodic
	// checkpoint (surviving at generation 1 after the final save rotates
	// it down) covers exactly the head's events and the tail resumes
	// without a gap.
	const every = 40
	const k = 3 * every
	headLog := filepath.Join(dir, "head.log")
	tailLog := filepath.Join(dir, "tail.log")
	splitLog(t, logPath, k, headLog, tailLog)

	fullCSV := filepath.Join(dir, "full.csv")
	var full strings.Builder
	if err := run(&full, []string{"-log", logPath, "-out", fullCSV, "-parallel", "0"}); err != nil {
		t.Fatal(err)
	}

	state := filepath.Join(dir, "chaos.state")
	headCSV := filepath.Join(dir, "head.csv")
	var head strings.Builder
	err := run(&head, []string{
		"-log", headLog, "-out", headCSV, "-parallel", "0",
		"-checkpoint", state, "-checkpoint-every", "40",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Three periodic checkpoints plus the final one rotated through three
	// retained generations; both gen 0 (final) and gen 1 (periodic at
	// event k) snapshot the identical post-head state.
	for gen := 0; gen <= 1; gen++ {
		if _, err := os.Stat(checkpoint.GenPath(state, gen)); err != nil {
			t.Fatalf("generation %d missing after head run: %v", gen, err)
		}
	}

	// The "kill": the newest generation is torn as if the process died
	// mid-write. Every older generation is untouched, exactly what the
	// saver's temp+rename protocol guarantees.
	data, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(state, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	tailCSV := filepath.Join(dir, "tail.csv")
	var tail strings.Builder
	err = run(&tail, []string{
		"-log", tailLog, "-out", tailCSV, "-parallel", "0", "-load-state", state,
	})
	if err != nil {
		t.Fatalf("resume after torn newest generation: %v", err)
	}

	fullOut := readFileT(t, fullCSV)
	headOut := readFileT(t, headCSV)
	tailOut := readFileT(t, tailCSV)
	_, tailBody, ok := strings.Cut(tailOut, "\n")
	if !ok {
		t.Fatal("tail CSV empty")
	}
	if stitched := headOut + tailBody; stitched != fullOut {
		t.Fatalf("kill-and-restore differs from uninterrupted run (%d vs %d bytes)",
			len(stitched), len(fullOut))
	}
}

// TestChaosKillWithAllGenerationsDamagedFailsLoudly: when no generation
// survives, the resume must refuse to start from invented state.
func TestChaosKillWithAllGenerationsDamagedFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	logPath, _ := writeDataset(t, dir)
	state := filepath.Join(dir, "doomed.state")
	var sb strings.Builder
	err := run(&sb, []string{
		"-log", logPath, "-parallel", "0",
		"-checkpoint", state, "-checkpoint-every", "40", "-max-events", "120",
	})
	if err != nil {
		t.Fatal(err)
	}
	for gen := 0; gen <= 2; gen++ {
		p := checkpoint.GenPath(state, gen)
		if _, err := os.Stat(p); err != nil {
			continue
		}
		if err := os.WriteFile(p, []byte("DVSCgarbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := run(&sb, []string{"-log", logPath, "-parallel", "0", "-load-state", state}); err == nil {
		t.Fatal("resume succeeded with every generation damaged")
	}
}
